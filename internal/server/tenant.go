package server

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/wal"
	"esp/internal/wire"
)

// VirtualizeStream is the subscribe name of the cross-type Virtualize
// output (type streams subscribe under their type name).
const VirtualizeStream = "virtualize"

// Tenant hosts one deployment: a core.Processor, its receptor channels,
// an epoch clock driven by Advance frames, and the tenant's
// subscribers. A single actor goroutine owns the processor — publishes
// go straight to the (thread-safe) channels, but every Step and every
// subscriber mutation is serialized through the mailbox, which is what
// makes a tenant's output deterministic no matter how many connections
// feed it.
type Tenant struct {
	name  string
	epoch time.Duration
	proc  *core.Processor
	chans map[string]*receptor.Channel
	quota Quota
	reg   *telemetry.Registry

	cmds chan func()
	quit chan struct{} // closed by the drain command; tells loop to exit
	done chan struct{} // closed when loop has exited

	// jl, when non-nil, is the tenant's write-ahead log: publishes are
	// journalled before they are acked, and every committed epoch ends
	// with a fsynced barrier. recovered carries what Open found in an
	// existing journal (nil when the tenant started fresh).
	jl        *wal.Log
	recovered *wal.Recovery

	// Actor-owned state (touched only inside mailbox commands).
	last      time.Time                 // latest committed epoch boundary
	pending   map[string][]stream.Tuple // per-stream output buffered during a Step
	subs      []*subscriber
	drained   bool
	replaying bool // inside boot replay: suppress re-journalling

	// Retention ring for subscriber resume (actor-owned): the last
	// resumeHorizon() output-bearing epochs' Data frames, plus the
	// newest epoch evicted from it (resumes from at or before
	// evictedThrough must go to the archive instead).
	retained       []retainedEpoch
	evictedThrough int64

	// Publisher session table, guarded by its own lock (publishes
	// bypass the actor).
	sessMu   sync.Mutex
	sessions map[string]*session

	// Telemetry counters (atomic; readable from any goroutine).
	tuplesIn   *telemetry.Counter
	framesIn   *telemetry.Counter
	epochs     *telemetry.Counter
	dataOut    *telemetry.Counter
	subKicked  *telemetry.Counter
	reconnects *telemetry.Counter
	resumes    *telemetry.Counter
	dedupDrops *telemetry.Counter
	idleKills  *telemetry.Counter

	// Observability plane (tentpole wiring).
	tracer    *telemetry.Tracer
	logger    *slog.Logger
	slowEpoch time.Duration

	// SLO histograms: epoch step cost, first-ingest→commit, and
	// commit→first-delivery latency.
	stepNs         *telemetry.Histogram
	ingestCommitNs *telemetry.Histogram
	deliveryNs     *telemetry.Histogram

	// RED counters per frame type (rate + errors; duration is the
	// rpc_*_ns histograms). Incremented by the connection handlers.
	rpcPublish   *telemetry.Counter
	rpcAdvance   *telemetry.Counter
	rpcSubscribe *telemetry.Counter
	rpcStats     *telemetry.Counter
	rpcErrors    *telemetry.Counter
	rpcPublishNs *telemetry.Histogram
	rpcAdvanceNs *telemetry.Histogram

	// firstIngest is the wall clock of the first publish since the last
	// commit (CAS-set, swapped out at commit) — the ingest→commit SLO's
	// start mark. pendingTrace holds the earliest traced publish's ID
	// since the last commit, the epoch's exemplar.
	firstIngest  atomic.Int64
	pendingTrace atomic.Uint64

	// Watermark/staleness atomics behind the slo_* gauges.
	lastEpochNano  atomic.Int64 // latest committed boundary (UnixNano)
	lastCommitWall atomic.Int64 // wall clock of that commit

	// Commit wall clocks by epoch, for the commit→delivery histogram
	// (deliveries happen on push goroutines, hence the lock).
	commitMu   sync.Mutex
	commitWall map[int64]int64
	commitQ    []int64

	// advTrace is the actor-owned trace carried by the advance driving
	// the current step (exemplar fallback when no publish was traced).
	// curFsyncTrace/curFsyncEpoch are set before jl.Commit so the WAL's
	// OnFsync hook (same goroutine) can attribute the fsync span.
	advTrace      telemetry.TraceID
	curFsyncTrace telemetry.TraceID
	curFsyncEpoch int64

	// Per-stage counter handles, diffed across a traced Step to emit
	// stage spans.
	stageTaps []stageTap
}

// stageTap is one pipeline-stage counter watched for traced epochs.
type stageTap struct {
	span   string // span name, e.g. "stage.smooth"
	detail string // receptor type (or "" for virtualize)
	c      *telemetry.Counter
}

// subscriber is one attached output consumer. Its channel is bounded: a
// consumer that stops reading is kicked (closed with lost=true) rather
// than allowed to stall the tenant's epoch clock.
type subscriber struct {
	stream string
	ch     chan wire.Data
	final  int64 // set before ch is closed on drain: last committed epoch
	lost   bool  // kicked for falling behind
}

// tenantConfig is the engine-level wiring a tenant inherits at birth:
// journalling, tracing, logging, and the slow-epoch threshold.
type tenantConfig struct {
	walDir    string
	walNoSync bool
	tracer    *telemetry.Tracer
	logger    *slog.Logger
	slowEpoch time.Duration
}

// newTenant compiles a spec and starts the tenant actor. The tenant's
// registry is the processor's own, extended with the serve_* counters,
// so one exposition block carries both pipeline and serving telemetry.
//
// cfg.walDir, when non-empty, is this tenant's log directory: the
// journal in it is scanned (truncating any torn or uncommitted tail),
// its committed epochs are replayed through the fresh processor before
// the actor starts — rebuilding window state exactly, by the
// replay-commute property the oracle proves — and the log stays open
// for the tenant's own journalling.
func newTenant(name string, ps *parsedSpec, cfg tenantConfig) (*Tenant, error) {
	proc, err := core.NewProcessor(ps.dep)
	if err != nil {
		return nil, err
	}
	proc.EnableTelemetry()
	t := &Tenant{
		name:    name,
		epoch:   ps.dep.Epoch,
		proc:    proc,
		chans:   ps.chans,
		quota:   ps.quota,
		reg:     proc.Telemetry(),
		cmds:    make(chan func()),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		last:     ps.start,
		pending:  make(map[string][]stream.Tuple),
		sessions: make(map[string]*session),

		tracer:     cfg.tracer,
		logger:     cfg.logger,
		slowEpoch:  cfg.slowEpoch,
		commitWall: make(map[int64]int64),
	}
	t.tuplesIn = t.reg.Counter("serve_tuples_in")
	t.framesIn = t.reg.Counter("serve_publish_frames")
	t.epochs = t.reg.Counter("serve_epochs")
	t.dataOut = t.reg.Counter("serve_data_frames")
	t.subKicked = t.reg.Counter("serve_subscribers_kicked")
	t.reconnects = t.reg.Counter("serve_reconnects")
	t.resumes = t.reg.Counter("serve_resumes")
	t.dedupDrops = t.reg.Counter("serve_dedup_drops")
	t.idleKills = t.reg.Counter("conn_idle_kills")
	t.reg.GaugeFunc("serve_backlog", func() int64 {
		var n int64
		for _, ch := range t.chans {
			n += int64(ch.Pending())
		}
		return n
	})
	t.stepNs = t.reg.Histogram("serve_step_ns")
	t.reg.Describe("serve_step_ns", "per-epoch pipeline Step latency")
	t.ingestCommitNs = t.reg.Histogram("slo_ingest_commit_ns")
	t.reg.Describe("slo_ingest_commit_ns", "first publish after a commit to the next commit barrier")
	t.deliveryNs = t.reg.Histogram("slo_commit_delivery_ns")
	t.reg.Describe("slo_commit_delivery_ns", "commit barrier to a subscriber's socket write")
	t.reg.GaugeFunc("slo_watermark_epoch", func() int64 { return t.lastEpochNano.Load() })
	t.reg.Describe("slo_watermark_epoch", "latest committed epoch boundary (UnixNano)")
	t.reg.GaugeFunc("slo_staleness_ns", func() int64 {
		w := t.lastCommitWall.Load()
		if w == 0 {
			return 0
		}
		return time.Now().UnixNano() - w
	})
	t.reg.Describe("slo_staleness_ns", "wall time since the last commit (0 until the first)")
	t.rpcPublish = t.reg.Counter("rpc_publish")
	t.rpcAdvance = t.reg.Counter("rpc_advance")
	t.rpcSubscribe = t.reg.Counter("rpc_subscribe")
	t.rpcStats = t.reg.Counter("rpc_stats")
	t.rpcErrors = t.reg.Counter("rpc_errors")
	t.reg.Describe("rpc_errors", "requests answered with an Error frame")
	t.rpcPublishNs = t.reg.Histogram("rpc_publish_ns")
	t.rpcAdvanceNs = t.reg.Histogram("rpc_advance_ns")

	// Deterministic sink registration order: sorted type names, then
	// virtualize. Sinks run inside Step (actor goroutine), appending to
	// the per-stream buffers the actor flushes after the Step returns.
	seen := make(map[string]bool)
	var types []string
	for _, gn := range ps.dep.Groups.Names() {
		g, _ := ps.dep.Groups.Group(gn)
		if tn := string(g.Type); !seen[tn] {
			seen[tn] = true
			types = append(types, tn)
		}
	}
	sort.Strings(types)
	for _, tn := range types {
		tn := tn
		proc.OnType(receptor.Type(tn), func(tu stream.Tuple) {
			t.pending[tn] = append(t.pending[tn], tu)
		})
	}
	if ps.dep.Virtualize != nil {
		proc.OnVirtualize(func(tu stream.Tuple) {
			t.pending[VirtualizeStream] = append(t.pending[VirtualizeStream], tu)
		})
	}

	// Stage taps: the per-type stage counters the processor registers,
	// diffed across a traced Step so the exemplar trace shows how many
	// tuples each stage released for that epoch. Resolved once here —
	// traced epochs pay a handful of atomic loads, not map lookups.
	for _, tn := range types {
		t.stageTaps = append(t.stageTaps, stageTap{span: "stage.point", detail: tn, c: t.reg.Counter(fmt.Sprintf("stage.%s/Point.tuples", tn))})
		t.stageTaps = append(t.stageTaps, stageTap{span: "stage.smooth", detail: tn, c: t.reg.Counter(fmt.Sprintf("stage.%s/Smooth.tuples", tn))})
		t.stageTaps = append(t.stageTaps, stageTap{span: "stage.merge", detail: tn, c: t.reg.Counter(fmt.Sprintf("stage.%s/Merge.tuples", tn))})
		t.stageTaps = append(t.stageTaps, stageTap{span: "stage.arbitrate", detail: tn, c: t.reg.Counter(fmt.Sprintf("stage.%s/Arbitrate.tuples", tn))})
	}
	if ps.dep.Virtualize != nil {
		t.stageTaps = append(t.stageTaps, stageTap{span: "stage.virtualize", c: t.reg.Counter("stage.virtualize.tuples")})
	}

	if cfg.walDir != "" {
		jl, rec, err := wal.Open(wal.Options{
			Dir: cfg.walDir, Source: name, Registry: t.reg, NoSync: cfg.walNoSync,
			// Runs on the committing goroutine (the actor) inside
			// Commit, so the actor-owned curFsync* fields are safe to
			// read — this is how a traced request's fsync cost lands in
			// its trace.
			OnFsync: func(d time.Duration) {
				if t.curFsyncTrace != 0 {
					t.tracer.Record(telemetry.SpanRecord{
						TraceID: t.curFsyncTrace, Name: "wal.fsync", Tenant: t.name,
						Epoch: t.curFsyncEpoch, Start: time.Now().Add(-d), DurNs: int64(d),
					})
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: wal: %w", name, err)
		}
		t.jl = jl
		// Registered up front (not on first replay) so the family is
		// present — and documented — on every WAL-backed tenant.
		t.reg.Counter("wal_replayed_epochs")
		t.reg.Counter("wal_replayed_tuples")
		if !rec.Empty() {
			t.recovered = rec
			if err := t.replay(rec); err != nil {
				jl.Crash() // leave the catalog uncompleted; the journal is untouched
				return nil, err
			}
		}
	}

	go t.loop()
	return t, nil
}

// replay drives the recovered history through the processor before the
// actor starts (no concurrency yet, so the actor-owned state is safe
// to touch directly). Publishes go to the same channels in journal
// order and every barrier commits through the same stepLocked path, so
// the rebuilt state is byte-identical to the pre-crash run's — only
// re-journalling and the fsync are suppressed, and with no subscribers
// attached yet nothing is delivered twice.
func (t *Tenant) replay(rec *wal.Recovery) error {
	replayedEpochs := t.reg.Counter("wal_replayed_epochs")
	replayedTuples := t.reg.Counter("wal_replayed_tuples")
	t.replaying = true
	defer func() { t.replaying = false }()
	for _, ep := range rec.Epochs {
		for _, p := range ep.Publishes {
			ch, ok := t.chans[p.Receptor]
			if !ok {
				return fmt.Errorf("server: tenant %q: journal names unknown receptor %q (spec drift?)", t.name, p.Receptor)
			}
			ch.PublishAll(p.Tuples)
			replayedTuples.Add(int64(len(p.Tuples)))
		}
		if err := t.stepLocked(ep.Boundary); err != nil {
			return fmt.Errorf("server: tenant %q: replay: %w", t.name, err)
		}
		replayedEpochs.Add(1)
	}
	return nil
}

// Recovered reports what boot recovery replayed (nil when the tenant
// started fresh or journalling is off).
func (t *Tenant) Recovered() *wal.Recovery { return t.recovered }

func (t *Tenant) loop() {
	defer close(t.done)
	for {
		// quit is closed synchronously by the drain command (below, on
		// this goroutine), so this check deterministically stops the
		// loop before any command that raced with the drain can run.
		select {
		case <-t.quit:
			return
		default:
		}
		select {
		case fn := <-t.cmds:
			fn()
		case <-t.quit:
			return
		}
	}
}

// do runs fn on the actor goroutine and waits for it. The mailbox is
// never closed — after drain the loop has exited (done is closed) and
// senders fall through to the error arm; a command that slipped in just
// before the drain is rejected by the drained check on the actor.
func (t *Tenant) do(fn func() error) error {
	drainedErr := fmt.Errorf("server: tenant %q is drained", t.name)
	errc := make(chan error, 1)
	select {
	case t.cmds <- func() {
		if t.drained {
			errc <- drainedErr
			return
		}
		errc <- fn()
	}:
		// A successful send means the loop received the closure and will
		// run it before it can exit.
		return <-errc
	case <-t.done:
		return drainedErr
	}
}

// Name reports the tenant name.
func (t *Tenant) Name() string { return t.name }

// Epoch reports the tenant's punctuation period.
func (t *Tenant) Epoch() time.Duration { return t.epoch }

// Registry exposes the tenant's telemetry registry (the processor's own
// registry plus the serve_* counters) for exposition.
func (t *Tenant) Registry() *telemetry.Registry { return t.reg }

// Publish appends readings to one receptor channel and reports the
// channel's backpressure state. It does not pass through the actor —
// channels are thread-safe and eviction at the cap bounds memory — so
// publishers on many connections never serialize behind a Step.
func (t *Tenant) Publish(rec string, ts []stream.Tuple) (wire.Ack, error) {
	return t.PublishTraced(rec, ts, 0)
}

// PublishTraced is Publish carrying the frame's trace context: a
// non-zero traceID records a server.apply span (journal + channel
// append) and nominates the ID as the epoch's exemplar — the trace a
// slow-epoch event and the epoch's Data frames will reference. The
// untraced path (traceID 0, the overwhelming majority under sampling)
// adds exactly one predictable branch and no allocations.
func (t *Tenant) PublishTraced(rec string, ts []stream.Tuple, traceID uint64) (wire.Ack, error) {
	ch, ok := t.chans[rec]
	if !ok {
		return wire.Ack{}, fmt.Errorf("server: tenant %q has no receptor %q", t.name, rec)
	}
	if max := t.quota.maxPublishTuples(); len(ts) > max {
		return wire.Ack{}, fmt.Errorf("server: publish of %d tuples exceeds tenant quota %d", len(ts), max)
	}
	t0 := time.Now()
	t.firstIngest.CompareAndSwap(0, t0.UnixNano())
	if t.jl != nil {
		// Journal before ack. The channel publish runs under the log's
		// lock so journal order and channel order agree even with
		// concurrent publishers — what makes replay byte-identical.
		// The record is durable at the next commit barrier; a crash
		// before then loses it, which is the documented contract:
		// clients re-send everything after the last committed epoch.
		if err := t.jl.Journal(rec, ts, func() { ch.PublishAll(ts) }); err != nil {
			return wire.Ack{}, fmt.Errorf("server: tenant %q: journal: %w", t.name, err)
		}
	} else {
		ch.PublishAll(ts)
	}
	t.framesIn.Add(1)
	t.tuplesIn.Add(int64(len(ts)))
	if traceID != 0 {
		// Earliest traced publish wins the exemplar slot for the epoch.
		t.pendingTrace.CompareAndSwap(0, traceID)
		t.tracer.Record(telemetry.SpanRecord{
			TraceID: telemetry.TraceID(traceID), Name: "server.apply", Tenant: t.name,
			Detail: rec, Start: t0, DurNs: int64(time.Since(t0)), In: int64(len(ts)),
		})
	}
	return wire.Ack{
		Pending: int64(ch.Pending()),
		Cap:     int64(ch.Cap()),
		Dropped: ch.Dropped(),
	}, nil
}

// Advance commits every epoch boundary in (last, now]: for each one the
// processor polls the channels and steps the pipeline, and the
// boundary's output is flushed to subscribers before the next boundary
// runs. Advance returns after the last boundary has committed — it is
// the client-visible epoch barrier.
func (t *Tenant) Advance(now time.Time) error {
	return t.AdvanceTraced(now, 0)
}

// AdvanceTraced is Advance carrying the frame's trace context: a
// non-zero traceID records a server.advance span covering every
// boundary the advance committed, and serves as the exemplar for
// boundaries no traced publish fed. An untraced advance asks the
// tenant's own tracer to sample — the server-side origin that keeps
// one in every sampleN advance-driven epochs observable even when no
// client propagates a trace.
func (t *Tenant) AdvanceTraced(now time.Time, traceID uint64) error {
	if traceID == 0 {
		if id, ok := t.tracer.Sample(); ok {
			traceID = uint64(id)
		}
	}
	var t0 time.Time
	if traceID != 0 {
		t0 = time.Now()
	}
	err := t.do(func() error {
		t.advTrace = telemetry.TraceID(traceID)
		defer func() { t.advTrace = 0 }()
		return t.advanceLocked(now.UTC())
	})
	if traceID != 0 {
		t.tracer.Record(telemetry.SpanRecord{
			TraceID: telemetry.TraceID(traceID), Name: "server.advance", Tenant: t.name,
			Epoch: now.UnixNano(), Start: t0, DurNs: int64(time.Since(t0)),
		})
	}
	return err
}

// advanceLocked runs on the actor goroutine.
func (t *Tenant) advanceLocked(now time.Time) error {
	for b := t.last.Add(t.epoch); !b.After(now); b = b.Add(t.epoch) {
		if err := t.stepLocked(b); err != nil {
			return err
		}
	}
	return nil
}

// stepLocked commits one epoch boundary and flushes its output. With a
// WAL attached the barrier is made durable (archive the epoch's
// output, append the journal barrier, fsync) before subscribers see
// the epoch — an advance ack therefore guarantees the epoch survives
// a crash. During boot replay the barrier already exists on disk, so
// only lost archive records are regenerated.
func (t *Tenant) stepLocked(b time.Time) error {
	// The epoch's exemplar trace: the earliest traced publish since the
	// last commit, falling back to the advance that drove this boundary.
	// Replay never traces — the spans would describe a reconstruction,
	// not a request.
	var exemplar telemetry.TraceID
	if !t.replaying {
		exemplar = telemetry.TraceID(t.pendingTrace.Swap(0))
		if exemplar == 0 {
			exemplar = t.advTrace
		}
	}
	var preStages []int64
	if exemplar != 0 {
		preStages = make([]int64, len(t.stageTaps))
		for i, tap := range t.stageTaps {
			preStages[i] = tap.c.Load()
		}
	}
	epoch := b.UnixNano()
	t.curFsyncTrace, t.curFsyncEpoch = exemplar, epoch

	t0 := time.Now()
	if err := t.proc.Step(b); err != nil {
		return fmt.Errorf("server: tenant %q: %w", t.name, err)
	}
	stepDur := time.Since(t0)
	t.stepNs.Observe(stepDur)
	t.last = b
	t.epochs.Add(1)
	if t.jl != nil {
		var err error
		if t.replaying {
			err = t.jl.ReplayCommit(b, t.pending)
		} else {
			err = t.jl.Commit(b, t.pending)
		}
		if err != nil {
			return fmt.Errorf("server: tenant %q: wal: %w", t.name, err)
		}
	}
	if !t.replaying {
		now := time.Now()
		t.lastEpochNano.Store(epoch)
		t.lastCommitWall.Store(now.UnixNano())
		if fi := t.firstIngest.Swap(0); fi != 0 {
			t.ingestCommitNs.Observe(time.Duration(now.UnixNano() - fi))
		}
	}
	if exemplar != 0 {
		for i, tap := range t.stageTaps {
			if d := tap.c.Load() - preStages[i]; d > 0 {
				t.tracer.Record(telemetry.SpanRecord{
					TraceID: exemplar, Name: tap.span, Tenant: t.name,
					Detail: tap.detail, Epoch: epoch, Start: t0, Out: d,
				})
			}
		}
	}
	t.flushLocked(b, exemplar)
	total := time.Since(t0)
	if exemplar != 0 {
		t.tracer.Record(telemetry.SpanRecord{
			TraceID: exemplar, Name: "pipeline.step", Tenant: t.name,
			Epoch: epoch, Start: t0, DurNs: int64(total),
		})
	}
	if t.slowEpoch > 0 && total > t.slowEpoch && t.logger != nil && !t.replaying {
		// The structured slow-epoch event: the exemplar trace ID is the
		// bridge from an aggregate symptom ("epochs are slow") to one
		// concrete request's span breakdown in /traces.
		t.logger.Warn("slow epoch",
			"tenant", t.name, "epoch", epoch,
			"step", stepDur, "total", total,
			"trace", exemplar.String())
	}
	return nil
}

// flushLocked hands the epoch's buffered output to the subscribers and
// appends it to the retention ring. Each stream's frame is built once
// and shared — subscribers, the ring, and resume backlogs all read the
// same immutable Data value. A non-zero exemplar is stamped into every
// frame so the epoch's trace ID travels to the subscriber's wire.
func (t *Tenant) flushLocked(b time.Time, exemplar telemetry.TraceID) {
	if len(t.pending) == 0 {
		return
	}
	epoch := b.UnixNano()
	var names []string
	for name, out := range t.pending {
		if len(out) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	frames := make(map[string]wire.Data, len(names))
	ordered := make([]wire.Data, 0, len(names))
	for _, name := range names {
		d := wire.Data{Stream: name, Epoch: epoch, Tuples: append([]stream.Tuple(nil), t.pending[name]...), TraceID: uint64(exemplar)}
		frames[name] = d
		ordered = append(ordered, d)
	}
	t.retainLocked(epoch, ordered)
	if !t.replaying {
		t.stampCommit(epoch)
	}
	keep := t.subs[:0]
	for _, sub := range t.subs {
		d, ok := frames[sub.stream]
		if !ok {
			keep = append(keep, sub)
			continue
		}
		select {
		case sub.ch <- d:
			t.dataOut.Add(1)
			keep = append(keep, sub)
		default:
			// The consumer is a full buffer behind: kick it rather than
			// stall the tenant's epoch clock.
			sub.lost = true
			close(sub.ch)
			t.subKicked.Add(1)
		}
	}
	t.subs = keep
	for k := range t.pending {
		t.pending[k] = t.pending[k][:0]
	}
}

// Subscribe attaches a consumer to one of the tenant's output streams
// (a receptor type name, or VirtualizeStream). The returned channel
// delivers one Data frame per committed epoch with output; it is closed
// after drain (Final reports the final committed epoch) or when the
// consumer is kicked for falling behind (Lost).
func (t *Tenant) Subscribe(streamName string) (*Subscription, error) {
	sub, _, err := t.ResumeSubscribe(streamName, 0)
	return sub, err
}

// Unsubscribe detaches a subscriber (consumer-initiated close).
func (t *Tenant) unsubscribe(target *subscriber) {
	_ = t.do(func() error {
		for i, sub := range t.subs {
			if sub == target {
				t.subs = append(t.subs[:i], t.subs[i+1:]...)
				close(sub.ch)
				return nil
			}
		}
		return nil
	})
}

// Drain gracefully stops the tenant: every reading already published is
// committed (the clock advances past the newest pending timestamp), the
// final epoch is flushed, subscribers are closed with the final epoch
// recorded, and the actor exits. No committed epoch is lost: drain runs
// through the same mailbox as Advance, so it cannot overtake an epoch
// in flight. Idempotent.
func (t *Tenant) Drain() error {
	var err error
	t.drainOnce(func() {
		err = t.drainLocked()
	})
	return err
}

// drainOnce runs fn on the actor and stops the loop, exactly once.
func (t *Tenant) drainOnce(fn func()) {
	done := make(chan struct{})
	select {
	case t.cmds <- func() {
		defer close(done)
		if !t.drained {
			t.drained = true
			fn()
			close(t.quit)
		}
	}:
		<-done
		<-t.done
	case <-t.done:
	}
}

// maxDrainEpochs bounds how many boundaries a drain will commit while
// chasing pending readings, so a hostile far-future timestamp cannot
// spin the drain forever. Readings beyond the bound are abandoned
// (still counted in the channels' Pending at exit).
const maxDrainEpochs = 4096

// drainLocked flushes all in-flight readings on the actor goroutine:
// boundaries are committed one epoch at a time until every published
// reading has been polled (Poll is timestamp-gated, so each boundary
// consumes everything at or before it).
func (t *Tenant) drainLocked() error {
	for i := 0; i < maxDrainEpochs; i++ {
		pending := 0
		for _, ch := range t.chans {
			pending += ch.Pending()
		}
		if pending == 0 {
			break
		}
		if err := t.stepLocked(t.last.Add(t.epoch)); err != nil {
			return err
		}
	}
	var err error
	if t.jl != nil {
		// Clean shutdown: sync both files and stamp the catalog
		// completed, so the next boot knows no recovery is needed.
		err = t.jl.Close()
	}
	final := t.last.UnixNano()
	for _, sub := range t.subs {
		sub.final = final
		close(sub.ch)
	}
	t.subs = nil
	return err
}

// Crash abandons the tenant the way a process kill would: the actor
// stops without draining, subscribers close without a final epoch, and
// the WAL drops its userspace buffers without flushing — on disk,
// exactly the committed (fsynced) epochs survive. Test support for the
// crash-recovery harnesses; a real process kill is strictly harsher
// only in ways the torn-write battery covers by mutating the files.
func (t *Tenant) Crash() {
	t.drainOnce(func() {
		if t.jl != nil {
			t.jl.Crash()
		}
		for _, sub := range t.subs {
			sub.lost = true
			close(sub.ch)
		}
		t.subs = nil
	})
}

// Last reports the latest committed epoch boundary.
func (t *Tenant) Last() time.Time {
	var last time.Time
	err := t.do(func() error { last = t.last; return nil })
	if err != nil {
		return t.last // drained: actor state is frozen and safe to read
	}
	return last
}

// Subscription is a consumer handle on one tenant output stream.
type Subscription struct {
	t        *Tenant
	sub      *subscriber
	attached int64
}

// Attached reports the epoch committed last at the instant the
// subscriber attached: frames delivered on C are strictly after it.
func (s *Subscription) Attached() int64 { return s.attached }

// C is the frame channel; closed on drain or when kicked.
func (s *Subscription) C() <-chan wire.Data { return s.sub.ch }

// Final reports the final committed epoch (valid once C is closed by a
// drain).
func (s *Subscription) Final() int64 { return s.sub.final }

// Lost reports whether the subscriber was kicked for falling behind.
func (s *Subscription) Lost() bool { return s.sub.lost }

// Close detaches the subscription.
func (s *Subscription) Close() { s.t.unsubscribe(s.sub) }

// Stats is a tenant stats snapshot (JSON for the stats frame).
type Stats struct {
	Tenant      string `json:"tenant"`
	Epoch       string `json:"epoch"`
	LastEpoch   int64  `json:"last_epoch"`
	TuplesIn    int64  `json:"tuples_in"`
	Frames      int64  `json:"publish_frames"`
	Epochs      int64  `json:"epochs"`
	DataFrames  int64  `json:"data_frames"`
	Subscribers int    `json:"subscribers"`
	Backlog     int    `json:"backlog"`
	Dropped     int64  `json:"dropped"`
	Reconnects  int64  `json:"reconnects,omitempty"`
	Resumes     int64  `json:"resumes,omitempty"`
	DedupDrops  int64  `json:"dedup_drops,omitempty"`
	IdleKills   int64  `json:"idle_kills,omitempty"`
}

// maxCommitWallEntries bounds the commit-wall table feeding the
// commit→delivery histogram; epochs older than the window stop being
// observable, which only loses SLO samples, never correctness.
const maxCommitWallEntries = 1024

// stampCommit records the wall clock at which an epoch's frames became
// available to subscribers. Runs on the actor.
func (t *Tenant) stampCommit(epoch int64) {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	if _, ok := t.commitWall[epoch]; ok {
		return
	}
	t.commitWall[epoch] = time.Now().UnixNano()
	t.commitQ = append(t.commitQ, epoch)
	for len(t.commitQ) > maxCommitWallEntries {
		delete(t.commitWall, t.commitQ[0])
		t.commitQ = t.commitQ[1:]
	}
}

// observeDelivery folds one subscriber delivery of an epoch into the
// commit→delivery histogram. Called from push goroutines.
func (t *Tenant) observeDelivery(epoch int64) {
	t.commitMu.Lock()
	w, ok := t.commitWall[epoch]
	t.commitMu.Unlock()
	if ok {
		t.deliveryNs.Observe(time.Duration(time.Now().UnixNano() - w))
	}
}

// Status is the ops-surface view of a tenant: Stats plus the SLO state
// /statusz tables — sessions, staleness, and the resume horizon.
type Status struct {
	Stats
	Sessions       int   `json:"sessions"`
	StalenessNs    int64 `json:"staleness_ns"`
	RetainedEpochs int   `json:"retained_epochs"`
	EvictedThrough int64 `json:"evicted_through"`
}

// Status snapshots the tenant for the ops surface.
func (t *Tenant) Status() Status {
	st := Status{Stats: t.Stats()}
	t.sessMu.Lock()
	st.Sessions = len(t.sessions)
	t.sessMu.Unlock()
	if w := t.lastCommitWall.Load(); w != 0 {
		st.StalenessNs = time.Now().UnixNano() - w
	}
	_ = t.do(func() error {
		st.RetainedEpochs = len(t.retained)
		st.EvictedThrough = t.evictedThrough
		return nil
	})
	return st
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() Stats {
	st := Stats{
		Tenant:     t.name,
		Epoch:      t.epoch.String(),
		TuplesIn:   t.tuplesIn.Load(),
		Frames:     t.framesIn.Load(),
		Epochs:     t.epochs.Load(),
		DataFrames: t.dataOut.Load(),
		Reconnects: t.reconnects.Load(),
		Resumes:    t.resumes.Load(),
		DedupDrops: t.dedupDrops.Load(),
		IdleKills:  t.idleKills.Load(),
	}
	for _, ch := range t.chans {
		st.Backlog += ch.Pending()
		st.Dropped += ch.Dropped()
	}
	_ = t.do(func() error {
		st.LastEpoch = t.last.UnixNano()
		st.Subscribers = len(t.subs)
		return nil
	})
	return st
}
