package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"esp/internal/telemetry"
	"esp/internal/wire"
)

// Config configures a Server.
type Config struct {
	// Addr is the TCP listen address (":0" picks a free port).
	Addr string
	// MetricsAddr, if non-empty, serves the telemetry exposition
	// endpoint (/metrics with per-tenant registries, /metrics.json,
	// pprof) on this address.
	MetricsAddr string
	// MaxTenants bounds hosted pipelines (default DefaultMaxTenants).
	MaxTenants int
	// WALDir, if non-empty, enables per-tenant write-ahead logging
	// under this directory (see Engine.SetWALDir). The caller decides
	// when to run boot recovery via Engine().Recover().
	WALDir string
	// IdleTimeout, if positive, is the per-connection read deadline on
	// the control frame loop: a connection that sends nothing for this
	// long is killed (counted as conn_idle_kills). Subscribers streaming
	// output are exempt — they are read-idle by design; the write
	// deadline polices them instead.
	IdleTimeout time.Duration
	// WriteTimeout, if positive, bounds every frame write. A slow or
	// half-open client whose socket stops draining is disconnected after
	// this long instead of stalling its handler goroutine indefinitely.
	WriteTimeout time.Duration
	// Logger receives connection lifecycle events (nil = silent).
	Logger *slog.Logger
	// TraceSampleN, when positive, turns the tracing plane on: one in
	// every TraceSampleN advance-driven epochs (and any client-traced
	// frame) is recorded as cross-process spans, browsable at /traces.
	// 1 traces everything; 0 leaves the plane off — the per-frame cost
	// of off is one branch on a zero trace ID.
	TraceSampleN int
	// TraceSeed seeds trace-ID minting (0 is a valid seed; IDs are
	// deterministic per (sampleN, seed) which keeps runs comparable).
	TraceSeed int64
	// SlowEpoch, when positive, is the epoch-commit duration above which
	// a tenant logs a structured slow-epoch warning carrying the epoch's
	// exemplar trace ID.
	SlowEpoch time.Duration
}

// keepAlivePeriod is the TCP keepalive probe interval on accepted and
// dialed connections — the kernel-level backstop that eventually
// surfaces half-open peers even when both deadlines are disabled.
const keepAlivePeriod = 30 * time.Second

// Server fronts an Engine with the wire protocol over TCP.
type Server struct {
	eng       *Engine
	ln        net.Listener
	log       *slog.Logger
	reg       *telemetry.Registry
	tsrv      *telemetry.Server
	tracer    *telemetry.Tracer
	conns     *telemetry.Counter
	active    *telemetry.Gauge
	idleKills *telemetry.Counter // idle kills on conns not yet bound to a tenant
	idle      time.Duration
	write     time.Duration

	mu       sync.Mutex
	open     map[net.Conn]struct{}
	draining bool

	wg     sync.WaitGroup // all connection handlers
	pushWG sync.WaitGroup // handlers streaming to a subscriber
}

// Listen binds the listener (and the metrics endpoint, if configured)
// and returns a Server ready to Serve.
func Listen(cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		eng:   NewEngine(cfg.MaxTenants),
		ln:    ln,
		log:   log,
		reg:   telemetry.NewRegistry(),
		open:  make(map[net.Conn]struct{}),
		idle:  cfg.IdleTimeout,
		write: cfg.WriteTimeout,
	}
	if cfg.WALDir != "" {
		s.eng.SetWALDir(cfg.WALDir)
	}
	if cfg.TraceSampleN > 0 {
		s.tracer = telemetry.NewTracer(cfg.TraceSampleN, cfg.TraceSeed)
		s.eng.SetTracer(s.tracer)
	}
	s.eng.SetLogger(log)
	s.eng.SetSlowEpoch(cfg.SlowEpoch)
	s.conns = s.reg.Counter("server_conns")
	s.active = s.reg.Gauge("server_conns_active")
	s.idleKills = s.reg.Counter("conn_idle_kills")
	s.reg.GaugeFunc("server_tenants", func() int64 {
		return int64(len(s.eng.Tenants()))
	})
	s.reg.Gauge("build_info").Set(1)
	s.reg.Describe("build_info", "constant 1; the exposition prefix carries the build identity")
	if cfg.MetricsAddr != "" {
		tsrv, err := telemetry.Serve(cfg.MetricsAddr, telemetry.ServerConfig{
			Registry: s.reg,
			More:     s.eng.Registries,
			Tracer:   s.tracer,
			Mounts:   s.opsMounts(),
		})
		if err != nil {
			ln.Close()
			return nil, err
		}
		s.tsrv = tsrv
	}
	return s, nil
}

// Tracer reports the server's span recorder (nil when tracing is off).
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// Engine exposes the underlying engine (tests and embedded use).
func (s *Server) Engine() *Engine { return s.eng }

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// MetricsURL reports the telemetry endpoint base URL ("" if disabled).
func (s *Server) MetricsURL() string {
	if s.tsrv == nil {
		return ""
	}
	return s.tsrv.URL()
}

// Serve accepts connections until Shutdown (or a fatal listener
// error). It always returns a non-nil error; after Shutdown the error
// is net.ErrClosed.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.open[conn] = struct{}{}
		s.mu.Unlock()
		setKeepAlive(conn)
		s.conns.Add(1)
		s.active.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.active.Add(-1)
			s.handle(conn)
		}()
	}
}

// Shutdown drains the daemon gracefully: stop accepting, drain every
// tenant (committing in-flight epochs and sending subscribers their
// Drain frames), close remaining connections, and stop the telemetry
// endpoint last — in that order, so committed output reaches
// subscribers before their sockets die and the final counters stay
// scrapeable until everything else is down. ctx bounds the wait for
// connection handlers to finish.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	s.ln.Close()
	drainErr := s.eng.DrainAll()

	// Tenant drains closed every subscription channel; subscriber
	// handlers flush their buffered epochs and Drain frames, then exit.
	// Wait for those (bounded by ctx) BEFORE touching any socket, so
	// committed output is never cut off by the close below.
	pushed := make(chan struct{})
	go func() {
		s.pushWG.Wait()
		close(pushed)
	}()
	select {
	case <-pushed:
	case <-ctx.Done():
	}

	// The rest are idle control connections parked in ReadFrame (or
	// subscribers past their deadline): close their sockets to unblock
	// the handlers, then wait for all of them.
	s.mu.Lock()
	for c := range s.open {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()

	if s.tsrv != nil {
		if err := s.tsrv.Shutdown(ctx); err != nil && drainErr == nil {
			drainErr = err
		}
	}
	return drainErr
}

// setKeepAlive arms TCP keepalive on a connection (no-op for other
// conn types, e.g. net.Pipe in tests).
func setKeepAlive(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetKeepAlive(true)
		_ = tc.SetKeepAlivePeriod(keepAlivePeriod)
	}
}

// forget removes a finished connection from the open set.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.open, conn)
	s.mu.Unlock()
}

// handle runs one connection's frame loop.
func (s *Server) handle(conn net.Conn) {
	defer s.forget(conn)
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var tenant *Tenant // bound by hello (or per-frame tenant fields)
	var sessID string  // bound by a session hello: publishes dedup via the session

	reply := func(f wire.Frame) bool {
		if s.write > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.write))
		}
		if err := wire.WriteFrame(bw, f); err != nil {
			return false
		}
		return bw.Flush() == nil
	}
	fail := func(format string, args ...any) bool {
		if tenant != nil {
			tenant.rpcErrors.Add(1)
		}
		return reply(wire.Errorf(format, args...))
	}

	for {
		if s.idle > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		f, err := wire.ReadFrame(br)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// The control loop went quiet past the idle deadline:
				// kill the connection rather than hold its handler (and
				// any half-open peer's socket) forever.
				if tenant != nil {
					tenant.idleKills.Add(1)
				} else {
					s.idleKills.Add(1)
				}
				s.log.Debug("conn idle-killed", "remote", conn.RemoteAddr())
				return
			}
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.log.Debug("conn closed", "err", err)
			}
			return
		}
		switch f.Type {
		case wire.TypeHello:
			h, err := wire.DecodeHello(f)
			if err != nil {
				fail("bad hello: %v", err)
				return
			}
			if h.Tenant != "" {
				t, ok := s.eng.Tenant(h.Tenant)
				if !ok {
					if !fail("no such tenant %q", h.Tenant) {
						return
					}
					continue
				}
				tenant = t
			}
			ack := wire.Ack{}
			if h.Session != "" {
				if tenant == nil {
					if !fail("session hello needs a tenant") {
						return
					}
					continue
				}
				lastSeq, lastEpoch, err := tenant.AttachSession(h.Session)
				if err != nil {
					if !fail("%v", err) {
						return
					}
					continue
				}
				// The resume ack tells the reconnecting client where the
				// server actually is: its session's last applied publish
				// seq and the tenant's last committed epoch.
				sessID = h.Session
				ack.Seq = lastSeq
				ack.Epoch = lastEpoch
			}
			if !reply(ack.Frame()) {
				return
			}

		case wire.TypeCreate:
			m, err := wire.DecodeCreate(f)
			if err != nil {
				fail("bad create: %v", err)
				return
			}
			t, err := s.eng.Create(m.Tenant, m.Spec)
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			tenant = t
			s.log.Info("tenant created", "tenant", m.Tenant)
			if !reply(wire.Ack{}.Frame()) {
				return
			}

		case wire.TypePublish:
			m, err := wire.DecodePublish(f)
			if err != nil {
				fail("bad publish: %v", err)
				return
			}
			if tenant == nil {
				if !fail("publish before hello") {
					return
				}
				continue
			}
			tenant.rpcPublish.Add(1)
			t0 := time.Now()
			var ack wire.Ack
			if sessID != "" {
				ack, err = tenant.PublishSessionTraced(sessID, m.Seq, m.Receptor, m.Tuples, m.TraceID)
			} else {
				ack, err = tenant.PublishTraced(m.Receptor, m.Tuples, m.TraceID)
			}
			tenant.rpcPublishNs.Observe(time.Since(t0))
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			ack.Seq = m.Seq
			if !reply(ack.Frame()) {
				return
			}

		case wire.TypeAdvance:
			m, err := wire.DecodeAdvance(f)
			if err != nil {
				fail("bad advance: %v", err)
				return
			}
			if tenant == nil {
				if !fail("advance before hello") {
					return
				}
				continue
			}
			tenant.rpcAdvance.Add(1)
			t0 := time.Now()
			err = tenant.AdvanceTraced(time.Unix(0, m.Now).UTC(), m.TraceID)
			tenant.rpcAdvanceNs.Observe(time.Since(t0))
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			if !reply(wire.Ack{Seq: m.Seq}.Frame()) {
				return
			}

		case wire.TypeSubscribe:
			m, err := wire.DecodeSubscribe(f)
			if err != nil {
				fail("bad subscribe: %v", err)
				return
			}
			t := tenant
			if m.Tenant != "" {
				tt, ok := s.eng.Tenant(m.Tenant)
				if !ok {
					if !fail("no such tenant %q", m.Tenant) {
						return
					}
					continue
				}
				t = tt
			}
			if t == nil {
				if !fail("subscribe before hello") {
					return
				}
				continue
			}
			t.rpcSubscribe.Add(1)
			sub, backlog, err := t.ResumeSubscribe(m.Stream, m.FromEpoch)
			if err != nil {
				if !fail("%v", err) {
					return
				}
				continue
			}
			// The ack's Epoch is the attach point: the client's resume
			// cursor until the first Data frame lands.
			if !reply(wire.Ack{Epoch: sub.Attached()}.Frame()) {
				sub.Close()
				return
			}
			// Catch-up: epochs committed after the client's cursor are
			// replayed before live frames. The subscriber was attached in
			// the same actor command that snapshotted the backlog, so live
			// frames (buffered in the channel meanwhile) continue exactly
			// where the backlog ends — no gap, no duplicate.
			for _, d := range backlog {
				if !reply(d.Frame()) {
					sub.Close()
					return
				}
			}
			// Register as a pushing handler so Shutdown lets this
			// connection flush before closing sockets. If a shutdown is
			// already past its pushWG.Wait, skip registration (Add would
			// race the Wait) — the stream is cut short, which is fine for
			// a subscription that raced the shutdown itself.
			s.mu.Lock()
			tracked := !s.draining
			if tracked {
				s.pushWG.Add(1)
			}
			s.mu.Unlock()
			s.push(conn, br, bw, t, sub)
			if tracked {
				s.pushWG.Done()
			}
			return

		case wire.TypeStats:
			if tenant == nil {
				if !fail("stats before hello") {
					return
				}
				continue
			}
			tenant.rpcStats.Add(1)
			b, _ := json.Marshal(tenant.Stats())
			if !reply(wire.Frame{Type: wire.TypeStats, Flags: wire.FlagJSON, Payload: b}) {
				return
			}

		default:
			if !fail("unexpected frame %s", f.Type) {
				return
			}
		}
	}
}

// push streams a subscription's Data frames until the subscription
// closes (drain or kicked) or the client goes away. The reader side is
// watched concurrently so a dropped client releases its subscriber
// slot instead of buffering until kicked.
func (s *Server) push(conn net.Conn, br *bufio.Reader, bw *bufio.Writer, t *Tenant, sub *Subscription) {
	// A subscriber is legitimately read-idle: lift the control loop's
	// idle deadline so the watcher goroutine blocks indefinitely. The
	// write deadline below is what polices a half-open subscriber.
	_ = conn.SetReadDeadline(time.Time{})
	gone := make(chan struct{})
	go func() {
		defer close(gone)
		for {
			if _, err := wire.ReadFrame(br); err != nil {
				return
			}
			// Frames from a subscriber are ignored.
		}
	}()
	defer sub.Close()
	deadline := func() {
		if s.write > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.write))
		}
	}
	for {
		select {
		case d, ok := <-sub.C():
			if !ok {
				deadline()
				if sub.Lost() {
					_ = wire.WriteFrame(bw, wire.Errorf("subscriber fell behind; kicked"))
				} else {
					_ = wire.WriteFrame(bw, wire.Drain{FinalEpoch: sub.Final()}.Frame())
				}
				_ = bw.Flush()
				return
			}
			deadline()
			t0 := time.Now()
			if err := wire.WriteFrame(bw, d.Frame()); err != nil {
				s.kickIfStalled(t, err)
				return
			}
			if len(sub.C()) == 0 {
				if err := bw.Flush(); err != nil {
					s.kickIfStalled(t, err)
					return
				}
			}
			t.observeDelivery(d.Epoch)
			if d.TraceID != 0 {
				s.tracer.Record(telemetry.SpanRecord{
					TraceID: telemetry.TraceID(d.TraceID), Name: "subscriber.deliver",
					Tenant: t.Name(), Detail: d.Stream, Epoch: d.Epoch,
					Start: t0, DurNs: int64(time.Since(t0)), Out: int64(len(d.Tuples)),
				})
			}
		case <-gone:
			return
		}
	}
}

// kickIfStalled counts a push-side write-deadline disconnect: the
// subscriber's socket stopped draining (slow consumer or half-open
// peer), so the handler gave up on it rather than block. Kicks surface
// in the same serve_subscribers_kicked counter as buffer-overflow
// kicks — both mean "consumer could not keep up and was cut loose".
func (s *Server) kickIfStalled(t *Tenant, err error) {
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.subKicked.Add(1)
		s.log.Debug("subscriber write stalled; kicked", "tenant", t.Name())
	}
}

// String describes the server.
func (s *Server) String() string {
	return fmt.Sprintf("espd on %s (%d tenants)", s.Addr(), len(s.eng.Tenants()))
}
