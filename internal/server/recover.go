package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// specFile is the spec document persisted beside each tenant's journal
// — everything Recover needs to rebuild the pipeline.
const specFile = "spec.json"

// checkTenantDirName rejects tenant names that cannot double as a
// journal directory name: path separators or traversal in a name would
// let a hostile create frame escape the WAL root.
func checkTenantDirName(name string) error {
	if name == "" || name == "." || name == ".." ||
		name != filepath.Base(name) || strings.ContainsAny(name, "/\\") {
		return fmt.Errorf("server: tenant name %q is not filesystem-safe (WAL is enabled)", name)
	}
	return nil
}

// RecoveryReport summarises one tenant's boot recovery.
type RecoveryReport struct {
	// Tenant is the recovered tenant's name.
	Tenant string
	// Epochs is how many committed epochs were replayed.
	Epochs int
	// Last is the last committed barrier the tenant resumed from.
	Last time.Time
	// TailPublishes counts valid publishes journalled after the last
	// barrier — never acked as durable, so discarded: their senders
	// must re-send everything after Last.
	TailPublishes int
	// Corruption describes why the journal scan stopped early ("" for
	// a clean tail); everything after the stop point was truncated.
	Corruption string
	// Discarded is how many journal bytes truncation dropped.
	Discarded int64
}

// Recover scans the engine's WAL root and rebuilds a tenant from every
// journal directory found: the persisted spec recompiles the pipeline,
// the journal's committed epochs replay through it (byte-identical
// state, by the replay-commute property), and the tenant resumes
// accepting publishes and advances exactly after its last committed
// epoch. Tenants that recovered cleanly keep running even when others
// fail; the joined error reports every failure. Call once at boot,
// before serving traffic.
func (e *Engine) Recover() ([]RecoveryReport, error) {
	if e.walDir == "" {
		return nil, nil
	}
	ents, err := os.ReadDir(e.walDir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var reports []RecoveryReport
	var errs []error
	for _, ent := range ents {
		if !ent.IsDir() {
			continue
		}
		name := ent.Name()
		dir := filepath.Join(e.walDir, name)
		spec, err := os.ReadFile(filepath.Join(dir, specFile))
		if err != nil {
			errs = append(errs, fmt.Errorf("server: recover %q: %w", name, err))
			continue
		}
		ps, err := parseSpec(spec)
		if err != nil {
			errs = append(errs, fmt.Errorf("server: recover %q: %w", name, err))
			continue
		}
		e.mu.Lock()
		if e.drained {
			e.mu.Unlock()
			errs = append(errs, fmt.Errorf("server: recover %q: engine is draining", name))
			break
		}
		if _, taken := e.tenants[name]; taken {
			e.mu.Unlock()
			errs = append(errs, fmt.Errorf("server: recover %q: tenant already exists", name))
			continue
		}
		if len(e.tenants) >= e.maxTenants {
			e.mu.Unlock()
			errs = append(errs, fmt.Errorf("server: recover %q: tenant limit (%d) reached", name, e.maxTenants))
			continue
		}
		e.mu.Unlock()
		t, err := newTenant(name, ps, e.tenantConfig(dir))
		if err != nil {
			errs = append(errs, fmt.Errorf("server: recover %q: %w", name, err))
			continue
		}
		e.mu.Lock()
		e.tenants[name] = t
		e.mu.Unlock()
		rep := RecoveryReport{Tenant: name, Last: t.Last()}
		if rec := t.Recovered(); rec != nil {
			rep.Epochs = len(rec.Epochs)
			rep.TailPublishes = len(rec.Tail)
			rep.Corruption = rec.Corruption
			rep.Discarded = rec.Discarded
		}
		reports = append(reports, rep)
	}
	return reports, errors.Join(errs...)
}
