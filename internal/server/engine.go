package server

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"esp/internal/telemetry"
)

// Engine is the tenant registry: create/alter/drain pipelines, route
// publishes and subscriptions. It is the serving layer minus the
// socket — the in-process oracle and the loadgen smoke mode drive an
// Engine directly, so a server-hosted pipeline can be proven
// byte-identical to an in-process run of the same spec and input.
type Engine struct {
	maxTenants int
	walDir     string
	walNoSync  bool
	tracer     *telemetry.Tracer
	logger     *slog.Logger
	slowEpoch  time.Duration

	mu      sync.Mutex
	tenants map[string]*Tenant
	drained bool
}

// DefaultMaxTenants bounds how many pipelines one engine hosts.
const DefaultMaxTenants = 256

// NewEngine builds an empty engine. maxTenants <= 0 means the default.
func NewEngine(maxTenants int) *Engine {
	if maxTenants <= 0 {
		maxTenants = DefaultMaxTenants
	}
	return &Engine{maxTenants: maxTenants, tenants: make(map[string]*Tenant)}
}

// SetWALDir enables per-tenant write-ahead logging under dir: every
// tenant created afterwards journals its publishes and epoch barriers
// in dir/<name>/, and Recover rebuilds tenants from those directories
// at boot. Call before Create/Recover; not safe concurrently with
// them.
func (e *Engine) SetWALDir(dir string) { e.walDir = dir }

// WALDir reports the engine's WAL root ("" = journalling off).
func (e *Engine) WALDir() string { return e.walDir }

// SetWALNoSync disables the per-commit fdatasync on every tenant
// created afterwards. It voids the durability contract (a machine
// crash can lose acked epochs; a process crash cannot) — only for the
// bench's overhead decomposition and tests. Same call discipline as
// SetWALDir.
func (e *Engine) SetWALNoSync(on bool) { e.walNoSync = on }

// SetTracer attaches the cross-process span recorder every tenant
// created afterwards records into (nil = tracing plane off; the frame
// trace IDs still round-trip, they just aren't recorded). Same call
// discipline as SetWALDir.
func (e *Engine) SetTracer(tr *telemetry.Tracer) { e.tracer = tr }

// Tracer reports the engine's span recorder (nil when tracing is off).
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// SetLogger attaches the structured logger tenants emit operational
// events to (slow-epoch warnings). Same call discipline as SetWALDir.
func (e *Engine) SetLogger(l *slog.Logger) { e.logger = l }

// SetSlowEpoch sets the epoch-commit duration above which a tenant logs
// a structured slow-epoch warning carrying the epoch's exemplar trace
// ID (0 disables). Same call discipline as SetWALDir.
func (e *Engine) SetSlowEpoch(d time.Duration) { e.slowEpoch = d }

// Drained reports whether DrainAll has run — the liveness bit /healthz
// checks: a draining engine refuses new work.
func (e *Engine) Drained() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.drained
}

// Create compiles a spec and starts a tenant pipeline under name. If
// the name is taken, the existing tenant is drained first and replaced
// — the "alter" path: resubmitting a spec swaps the pipeline without
// losing the old one's committed epochs. With a WAL dir set, creating
// a tenant RESETS its journal directory (an altered pipeline cannot
// replay the old pipeline's history); resuming a journal is Recover's
// job, not Create's.
func (e *Engine) Create(name string, spec []byte) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("server: tenant name required")
	}
	if e.walDir != "" {
		if err := checkTenantDirName(name); err != nil {
			return nil, err
		}
	}
	ps, err := parseSpec(spec)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.drained {
		e.mu.Unlock()
		return nil, fmt.Errorf("server: engine is draining")
	}
	old := e.tenants[name]
	if old == nil && len(e.tenants) >= e.maxTenants {
		e.mu.Unlock()
		return nil, fmt.Errorf("server: tenant limit (%d) reached", e.maxTenants)
	}
	e.mu.Unlock()
	if old != nil {
		if err := old.Drain(); err != nil {
			return nil, fmt.Errorf("server: draining replaced tenant %q: %w", name, err)
		}
	}
	walDir := ""
	if e.walDir != "" {
		walDir = filepath.Join(e.walDir, name)
		// A fresh create (or an alter) starts a fresh history: the old
		// journal was written under a different pipeline and must not
		// be replayed into this one.
		if err := os.RemoveAll(walDir); err != nil {
			return nil, fmt.Errorf("server: resetting wal dir for %q: %w", name, err)
		}
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			return nil, err
		}
		// Persist the spec beside the journal so Recover can rebuild
		// the pipeline without any out-of-band state.
		if err := os.WriteFile(filepath.Join(walDir, specFile), spec, 0o644); err != nil {
			return nil, err
		}
	}
	t, err := newTenant(name, ps, e.tenantConfig(walDir))
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.drained {
		_ = t.Drain()
		return nil, fmt.Errorf("server: engine is draining")
	}
	e.tenants[name] = t
	return t, nil
}

// tenantConfig bundles the engine-level wiring a new tenant inherits.
func (e *Engine) tenantConfig(walDir string) tenantConfig {
	return tenantConfig{
		walDir:    walDir,
		walNoSync: e.walNoSync,
		tracer:    e.tracer,
		logger:    e.logger,
		slowEpoch: e.slowEpoch,
	}
}

// Tenant looks up a tenant by name.
func (e *Engine) Tenant(name string) (*Tenant, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t, ok := e.tenants[name]
	return t, ok
}

// Tenants lists the live tenants in name order.
func (e *Engine) Tenants() []*Tenant {
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.tenants))
	for n := range e.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Tenant, len(names))
	for i, n := range names {
		out[i] = e.tenants[n]
	}
	return out
}

// Registries exposes every tenant's telemetry registry under its name —
// the hook the /metrics exposition mounts via ServerConfig.More.
func (e *Engine) Registries() []telemetry.NamedRegistry {
	ts := e.Tenants()
	out := make([]telemetry.NamedRegistry, len(ts))
	for i, t := range ts {
		out[i] = telemetry.NamedRegistry{Name: "tenant_" + t.Name(), Registry: t.Registry()}
	}
	return out
}

// DrainAll gracefully drains every tenant (committing in-flight
// readings and closing subscribers) and refuses new creations. The
// first error is returned but every tenant is drained regardless.
func (e *Engine) DrainAll() error {
	e.mu.Lock()
	e.drained = true
	ts := make([]*Tenant, 0, len(e.tenants))
	for _, t := range e.tenants {
		ts = append(ts, t)
	}
	e.mu.Unlock()
	var first error
	for _, t := range ts {
		if err := t.Drain(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
