package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"esp/internal/stream"
)

// opsGet fetches one ops path from the server's telemetry endpoint and
// returns the status code and body.
func opsGet(t *testing.T, s *Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(s.MetricsURL() + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestHealthz covers the liveness surface: 200 while serving, 503 once
// the engine has drained, and 503 when the WAL root stops accepting
// writes (probed with a real file create, not a stat).
func TestHealthz(t *testing.T) {
	walDir := t.TempDir()
	cfg := Config{Addr: "127.0.0.1:0", MetricsAddr: "127.0.0.1:0", WALDir: walDir}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	if code, body := opsGet(t, s, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q, want 200 ok", code, body)
	}

	// Kill the WAL root out from under the daemon: the write probe must
	// fail and flip liveness before a journalled publish finds out.
	if err := os.RemoveAll(walDir); err != nil {
		t.Fatal(err)
	}
	if code, body := opsGet(t, s, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "wal root not writable") {
		t.Fatalf("healthz with dead WAL root = %d %q, want 503", code, body)
	}
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if code, _ := opsGet(t, s, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after WAL root restore = %d, want 200", code)
	}

	// A drained engine answers 503: the balancer should stop routing
	// here even though the process is still up.
	if err := s.Engine().DrainAll(); err != nil {
		t.Fatal(err)
	}
	if code, body := opsGet(t, s, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("healthz while draining = %d %q, want 503 draining", code, body)
	}
}

// TestStatusz covers the per-tenant ops table and its JSON twin.
func TestStatusz(t *testing.T) {
	s := startServer(t, true)
	ctl := dial(t, s)
	if err := ctl.Create("ops-tenant", testSpec("")); err != nil {
		t.Fatal(err)
	}
	sub := dial(t, s)
	if err := sub.Subscribe("ops-tenant", "rfid"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Publish("reader0", []stream.Tuple{read(0.2, "X", true), read(0.4, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sub.Next(); err != nil {
		t.Fatal(err)
	}

	code, body := opsGet(t, s, "/statusz")
	if code != http.StatusOK {
		t.Fatalf("statusz = %d", code)
	}
	for _, want := range []string{"TENANT", "EPOCH", "SESS", "SUBS", "STALE", "ops-tenant"} {
		if !strings.Contains(body, want) {
			t.Errorf("statusz table missing %q:\n%s", want, body)
		}
	}

	code, body = opsGet(t, s, "/statusz?format=json")
	if code != http.StatusOK {
		t.Fatalf("statusz json = %d", code)
	}
	var statuses []Status
	if err := json.Unmarshal([]byte(body), &statuses); err != nil {
		t.Fatalf("statusz json does not decode: %v\n%s", err, body)
	}
	if len(statuses) != 1 {
		t.Fatalf("statusz json has %d tenants, want 1", len(statuses))
	}
	st := statuses[0]
	if st.Tenant != "ops-tenant" {
		t.Errorf("tenant = %q", st.Tenant)
	}
	if st.Epochs != 1 {
		t.Errorf("epochs = %d, want 1", st.Epochs)
	}
	if st.Subscribers != 1 {
		t.Errorf("subscribers = %d, want 1", st.Subscribers)
	}
	if st.TuplesIn != 2 {
		t.Errorf("tuples in = %d, want 2", st.TuplesIn)
	}
	if st.StalenessNs <= 0 {
		t.Errorf("staleness = %d, want > 0 after a commit", st.StalenessNs)
	}
	if st.RetainedEpochs != 1 {
		t.Errorf("retained epochs = %d, want 1", st.RetainedEpochs)
	}
}

// TestStatuszEmpty: a daemon with no tenants still renders the table
// (header only) and an empty JSON array.
func TestStatuszEmpty(t *testing.T) {
	s := startServer(t, true)
	code, body := opsGet(t, s, "/statusz")
	if code != http.StatusOK || !strings.Contains(body, "0 tenant(s)") {
		t.Fatalf("empty statusz = %d %q", code, body)
	}
	code, body = opsGet(t, s, "/statusz?format=json")
	if code != http.StatusOK {
		t.Fatalf("empty statusz json = %d", code)
	}
	var statuses []Status
	if err := json.Unmarshal([]byte(body), &statuses); err != nil {
		t.Fatalf("empty statusz json: %v\n%s", err, body)
	}
	if len(statuses) != 0 {
		t.Fatalf("statuses = %v, want none", statuses)
	}
}
