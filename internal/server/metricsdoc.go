package server

import (
	"fmt"
	"sort"
	"strings"

	"esp/internal/telemetry"
)

// This file generates docs/METRICS.md from a booted daemon: the doc is
// a registry walk, not hand-maintained prose, so a metric cannot ship
// without documentation (TestMetricsDocDrift fails the build when the
// committed doc no longer matches what a live server registers).

// MetricFamily is one documented metric family: a registered name with
// per-instance tokens (tenant type names, node labels, receptor IDs)
// collapsed to placeholders, plus its kind and help string.
type MetricFamily struct {
	Scope string // "server" (daemon registry) or "tenant" (per-tenant registry)
	Name  string // normalized family name
	Kind  string // counter | gauge | histogram
	Help  string
}

// familyOf collapses one registered metric name to its family:
//
//	node.leg rfid r0@shelf0.tuples_in  -> node.<label>.tuples_in
//	stage.rfid/Point.tuples            -> stage.<type>/Point.tuples
//	poll.rfid.tuples                   -> poll.<type>.tuples
//	receptor.r0.channel_pending        -> receptor.<id>.channel_pending
//
// Everything else documents under its literal name.
func familyOf(name string) string {
	switch {
	case strings.HasPrefix(name, "node."):
		rest := name[len("node."):]
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			return name
		}
		return "node.<label>." + rest[i+1:]
	case strings.HasPrefix(name, "stage.") && strings.Contains(name, "/"):
		i := strings.Index(name, "/")
		return "stage.<type>" + name[i:]
	case strings.HasPrefix(name, "poll.") && strings.HasSuffix(name, ".tuples"):
		return "poll.<type>.tuples"
	case strings.HasPrefix(name, "receptor."):
		rest := name[len("receptor."):]
		i := strings.LastIndex(rest, ".")
		if i < 0 {
			return name
		}
		return "receptor.<id>." + rest[i+1:]
	}
	return name
}

// metricHelp documents the families whose help is not registered with
// Describe at the metric itself (per-instance names cannot carry one
// Describe each). A registered family missing from both sources fails
// doc generation — that is the "no undocumented metrics" gate.
var metricHelp = map[string]string{
	// Daemon-wide.
	"server_conns":        "connections accepted since boot",
	"server_conns_active": "connections currently open",
	"server_tenants":      "tenants currently hosted",
	"conn_idle_kills":     "connections killed by the idle read deadline",

	// Per-tenant serving counters.
	"serve_tuples_in":           "tuples accepted by Publish",
	"serve_publish_frames":      "Publish frames applied",
	"serve_epochs":              "epoch boundaries committed",
	"serve_data_frames":         "Data frames flushed to subscribers",
	"serve_subscribers_kicked":  "subscribers dropped for not draining their buffer",
	"serve_reconnects":          "session re-attaches (Hello on an existing session ID)",
	"serve_resumes":             "subscriber resumes that replayed a backlog",
	"serve_dedup_drops":         "publishes dropped as session-replay duplicates",
	"serve_backlog":             "tuples buffered in receptor channels awaiting the next epoch",
	"rpc_publish":               "Publish frames received (before dedup)",
	"rpc_advance":               "Advance frames received",
	"rpc_subscribe":             "Subscribe frames received",
	"rpc_stats":                 "Stats frames received",
	"rpc_publish_ns":            "server-side Publish handling latency",
	"rpc_advance_ns":            "server-side Advance handling latency (includes the commit barrier)",

	// Pipeline stage accounting (per receptor type).
	"stage.<type>/Point.tuples":     "tuples released by the Point stage",
	"stage.<type>/Smooth.tuples":    "tuples released by the Smooth stage",
	"stage.<type>/Merge.tuples":     "tuples released by the Merge stage",
	"stage.<type>/Arbitrate.tuples": "tuples released by the Arbitrate stage",
	"stage.virtualize.tuples":       "tuples released by the Virtualize stage",
	"poll.<type>.tuples":            "tuples polled from receptors of this type",

	// Dataflow node internals (label = "<kind> <instance>", kinds:
	// leg, merge, arbitrate, output, virtualize).
	"node.<label>.tuples_in":        "tuples entering the node",
	"node.<label>.tuples_out":       "tuples the node released downstream",
	"node.<label>.batches_in":       "columnar batches entering the node",
	"node.<label>.batch_rows":       "rows carried by those batches",
	"node.<label>.batch_fallbacks":  "batches that fell back to row-at-a-time execution",
	"node.<label>.panics":           "operator panics caught by the supervisor",
	"node.<label>.advance_ns":       "node punctuation (epoch advance) latency",
	"node.<label>.quarantined":      "1 while the node is quarantined by the health FSM",
	"node.<label>.window_panes":     "window panes currently held by the node's operators",
	"node.<label>.window_late_drops": "tuples dropped for arriving later than the window allows",

	// Bounded channel receptors.
	"receptor.<id>.channel_pending": "readings buffered in the receptor channel",
	"receptor.<id>.channel_dropped": "readings evicted from the receptor channel (overflow)",

	// Write-ahead log.
	"wal_publish_records":  "publish records appended to the journal",
	"wal_publish_tuples":   "tuples carried by those records",
	"wal_commits":          "epoch commit barriers appended",
	"wal_bytes":            "bytes appended to the journal",
	"wal_output_records":   "output records appended to the archive",
	"wal_rotations":        "segment rotations",
	"wal_fsync_ns":         "commit-barrier fsync latency",
	"wal_replayed_epochs":  "epochs replayed from the journal at boot",
	"wal_replayed_tuples":  "tuples replayed from the journal at boot",
}

// familiesFromRegistry walks one registry snapshot into sorted
// families, resolving help from the registry's own Describe first and
// the metricHelp table second. An undocumented family is an error.
func familiesFromRegistry(scope string, r *telemetry.Registry) ([]MetricFamily, error) {
	s := r.Snapshot()
	byName := make(map[string]MetricFamily)
	add := func(raw, kind string) error {
		fam := familyOf(raw)
		if prev, ok := byName[fam]; ok {
			if prev.Kind != kind {
				return fmt.Errorf("family %q maps to both %s and %s", fam, prev.Kind, kind)
			}
			return nil
		}
		help := r.Help(raw)
		if help == "" {
			help = metricHelp[fam]
		}
		if help == "" {
			return fmt.Errorf("metric %q (family %q) has no help: add a Describe or a metricHelp entry", raw, fam)
		}
		byName[fam] = MetricFamily{Scope: scope, Name: fam, Kind: kind, Help: help}
		return nil
	}
	for n := range s.Counters {
		if err := add(n, "counter"); err != nil {
			return nil, err
		}
	}
	for n := range s.Gauges {
		if err := add(n, "gauge"); err != nil {
			return nil, err
		}
	}
	for n := range s.Histograms {
		if err := add(n, "histogram"); err != nil {
			return nil, err
		}
	}
	fams := make([]MetricFamily, 0, len(byName))
	for _, f := range byName {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams, nil
}

// MetricFamilies documents every metric the daemon and its tenants
// register: the server registry under scope "server" and the union of
// all tenant registries under scope "tenant". Call on a booted server
// whose tenants exercise every registration path the doc should cover.
func (s *Server) MetricFamilies() ([]MetricFamily, error) {
	out, err := familiesFromRegistry("server", s.reg)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var tenant []MetricFamily
	for _, nr := range s.eng.Registries() {
		fams, err := familiesFromRegistry("tenant", nr.Registry)
		if err != nil {
			return nil, err
		}
		for _, f := range fams {
			if !seen[f.Name] {
				seen[f.Name] = true
				tenant = append(tenant, f)
			}
		}
	}
	sort.Slice(tenant, func(i, j int) bool { return tenant[i].Name < tenant[j].Name })
	return append(out, tenant...), nil
}

// RenderMetricsDoc renders the families as the docs/METRICS.md page.
func RenderMetricsDoc(fams []MetricFamily) string {
	var b strings.Builder
	b.WriteString("# Metrics\n\n")
	b.WriteString("Generated by the registry walk in `internal/server/metricsdoc.go`\n")
	b.WriteString("(`go test ./internal/server -run TestMetricsDocDrift -update`).\n")
	b.WriteString("Do not edit by hand — the drift test fails the build when this page\n")
	b.WriteString("no longer matches what a booted daemon registers.\n\n")
	b.WriteString("Prometheus exposition renders counters with a `_total` suffix and an\n")
	b.WriteString("`esp_` (server) or `esp_tenant_<name>_` (tenant) prefix; histograms\n")
	b.WriteString("render as summaries with `quantile` labels plus `_sum`/`_count`/`_max`.\n")
	b.WriteString("Placeholders: `<type>` a receptor type, `<id>` a receptor ID,\n")
	b.WriteString("`<label>` a dataflow node label (`<kind> <instance>`, kinds: leg,\n")
	b.WriteString("merge, arbitrate, output, virtualize).\n")
	scope := ""
	for _, f := range fams {
		if f.Scope != scope {
			scope = f.Scope
			switch scope {
			case "server":
				b.WriteString("\n## Daemon (server registry)\n\n")
			case "tenant":
				b.WriteString("\n## Per-tenant registries\n\n")
			}
			b.WriteString("| metric | kind | help |\n|---|---|---|\n")
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", f.Name, f.Kind, f.Help)
	}
	return b.String()
}
