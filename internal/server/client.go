package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/wire"
)

// Client is a wire-protocol client for espd: the loadgen's and the
// tests' view of the daemon. One client wraps one connection; use
// separate clients for publishing and subscribing (a subscribed
// connection switches to server-push).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint64
	json bool // encode publishes with the JSON debug fallback

	// tracer, when set, originates trace contexts: sampled publishes
	// and advances carry a minted trace ID on the wire and record
	// client-side spans (round-trip latency) beside the server's.
	tracer *telemetry.Tracer

	// subscribedConn marks a connection that has switched to
	// server-push (set by ResilientClient to know whether a fresh
	// connection still needs its subscription replayed).
	subscribedConn bool
}

// Dial connects to an espd address with TCP keepalive armed.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	setKeepAlive(conn)
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ServerError is a protocol-level Error frame from the daemon. It is
// deterministic — resending the same frame gets the same answer — so
// retry layers must not treat it as a transport fault.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// SetJSON switches publish encoding to the JSON debug fallback (the
// server accepts both; used to exercise the fallback path).
func (c *Client) SetJSON(on bool) { c.json = on }

// SetTracer attaches a span recorder: sampled publishes and advances
// mint a trace ID, send it on the wire, and record client.publish /
// client.advance spans; Next records client.deliver for Data frames
// carrying a trace. A nil tracer (the default) costs one nil check per
// call.
func (c *Client) SetTracer(tr *telemetry.Tracer) { c.tracer = tr }

// SetReadDeadline bounds blocking reads (zero time clears it) — used by
// consumers of an external daemon that cannot force a drain.
func (c *Client) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// SetDeadline bounds both directions of the next I/O (zero time clears
// it) — the per-call timeout hook for retry layers.
func (c *Client) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// roundTrip sends one frame and reads the reply, surfacing protocol
// errors as Go errors.
func (c *Client) roundTrip(f wire.Frame) (wire.Frame, error) {
	if err := wire.WriteFrame(c.bw, f); err != nil {
		return wire.Frame{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Frame{}, err
	}
	r, err := wire.ReadFrame(c.br)
	if err != nil {
		return wire.Frame{}, err
	}
	if r.Type == wire.TypeError {
		em, derr := wire.DecodeError(r)
		if derr != nil {
			return wire.Frame{}, fmt.Errorf("server error (undecodable: %v)", derr)
		}
		return wire.Frame{}, &ServerError{Msg: em.Msg}
	}
	return r, nil
}

// Hello binds the connection to a tenant. On failure the underlying
// connection is closed — a client that cannot complete its handshake
// has no protocol state worth keeping, and callers that bail on the
// error would otherwise leak the socket.
func (c *Client) Hello(tenant, role string) error {
	_, err := c.roundTrip(wire.Hello{Tenant: tenant, Role: role}.Frame())
	if err != nil {
		c.conn.Close()
	}
	return err
}

// HelloSession binds the connection to a tenant under a resumable
// session identity. The ack carries the server's view of the session —
// Seq is the last publish seq the server applied for it, Epoch the
// tenant's last committed epoch — which is what a reconnecting client
// needs to decide what to re-send. Closes the connection on failure,
// like Hello.
func (c *Client) HelloSession(tenant, role, session string, resumeEpoch int64) (wire.Ack, error) {
	r, err := c.roundTrip(wire.Hello{Tenant: tenant, Role: role, Session: session, ResumeEpoch: resumeEpoch}.Frame())
	if err != nil {
		c.conn.Close()
		return wire.Ack{}, err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		c.conn.Close()
		return wire.Ack{}, err
	}
	return ack, nil
}

// Create submits a pipeline spec and binds the connection to the new
// tenant.
func (c *Client) Create(tenant string, spec []byte) error {
	_, err := c.roundTrip(wire.Create{Tenant: tenant, Spec: spec}.Frame())
	return err
}

// Publish delivers readings for one receptor and returns the server's
// backpressure ack.
func (c *Client) Publish(receptorID string, ts []stream.Tuple) (wire.Ack, error) {
	c.seq++
	return c.PublishSeq(receptorID, c.seq, ts)
}

// PublishSeq is Publish with a caller-chosen sequence number — the
// resume hook: a reconnecting session re-sends its in-flight publish
// under the same seq so the server can deduplicate it.
func (c *Client) PublishSeq(receptorID string, seq uint64, ts []stream.Tuple) (wire.Ack, error) {
	m := wire.Publish{Receptor: receptorID, Seq: seq, Tuples: ts}
	var t0 time.Time
	if id, ok := c.tracer.Sample(); ok {
		m.TraceID = uint64(id)
		t0 = time.Now()
	}
	f := m.Frame()
	if c.json {
		f = m.FrameJSON()
	}
	r, err := c.roundTrip(f)
	if m.TraceID != 0 {
		c.tracer.Record(telemetry.SpanRecord{
			TraceID: telemetry.TraceID(m.TraceID), Name: "client.publish",
			Detail: receptorID, Start: t0, DurNs: int64(time.Since(t0)), In: int64(len(ts)),
		})
	}
	if err != nil {
		return wire.Ack{}, err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		return wire.Ack{}, err
	}
	if ack.Seq != seq {
		return ack, fmt.Errorf("server acked seq %d, want %d", ack.Seq, seq)
	}
	return ack, nil
}

// Advance commits every epoch boundary up to now and returns once the
// server has flushed them — the client-side epoch barrier.
func (c *Client) Advance(now time.Time) error {
	c.seq++
	return c.AdvanceSeq(c.seq, now)
}

// AdvanceSeq is Advance with a caller-chosen sequence number (see
// PublishSeq). Advancing is naturally idempotent — boundaries at or
// before the last committed epoch are no-ops — so replaying one after
// a reconnect is safe regardless of whether the original landed.
func (c *Client) AdvanceSeq(seq uint64, now time.Time) error {
	m := wire.Advance{Seq: seq, Now: now.UnixNano()}
	var t0 time.Time
	if id, ok := c.tracer.Sample(); ok {
		m.TraceID = uint64(id)
		t0 = time.Now()
	}
	r, err := c.roundTrip(m.Frame())
	if m.TraceID != 0 {
		c.tracer.Record(telemetry.SpanRecord{
			TraceID: telemetry.TraceID(m.TraceID), Name: "client.advance",
			Epoch: m.Now, Start: t0, DurNs: int64(time.Since(t0)),
		})
	}
	if err != nil {
		return err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		return err
	}
	if ack.Seq != seq {
		return fmt.Errorf("server acked seq %d, want %d", ack.Seq, seq)
	}
	return nil
}

// Stats fetches the tenant's stats snapshot.
func (c *Client) Stats() (Stats, error) {
	r, err := c.roundTrip(wire.Frame{Type: wire.TypeStats})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(r.Payload, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Subscribe attaches the connection to a tenant output stream. After a
// successful subscribe the connection is server-push: consume with
// Next until it reports done.
func (c *Client) Subscribe(tenant, streamName string) error {
	_, err := c.SubscribeFrom(tenant, streamName, 0)
	return err
}

// SubscribeFrom subscribes with a resume cursor: committed epochs
// strictly after fromEpoch are replayed before live frames. fromEpoch 0
// is a plain live-only subscribe; negative resumes from genesis. The
// returned epoch is the attach point — the tenant's last committed
// epoch at the instant the subscription took effect — which is the
// cursor to resume from while no Data frame has arrived yet.
func (c *Client) SubscribeFrom(tenant, streamName string, fromEpoch int64) (int64, error) {
	r, err := c.roundTrip(wire.Subscribe{Tenant: tenant, Stream: streamName, FromEpoch: fromEpoch}.Frame())
	if err != nil {
		return 0, err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		return 0, err
	}
	return ack.Epoch, nil
}

// Next reads the next Data frame on a subscribed connection. done
// reports a graceful end of stream (Drain received; final is its
// committed epoch).
func (c *Client) Next() (d wire.Data, final int64, done bool, err error) {
	for {
		f, rerr := wire.ReadFrame(c.br)
		if rerr != nil {
			return wire.Data{}, 0, false, rerr
		}
		switch f.Type {
		case wire.TypeData:
			d, err := wire.DecodeData(f)
			if err == nil && d.TraceID != 0 {
				c.tracer.Record(telemetry.SpanRecord{
					TraceID: telemetry.TraceID(d.TraceID), Name: "client.deliver",
					Detail: d.Stream, Epoch: d.Epoch, Start: time.Now(), Out: int64(len(d.Tuples)),
				})
			}
			return d, 0, false, err
		case wire.TypeDrain:
			dr, derr := wire.DecodeDrain(f)
			return wire.Data{}, dr.FinalEpoch, true, derr
		case wire.TypeError:
			em, derr := wire.DecodeError(f)
			if derr != nil {
				return wire.Data{}, 0, false, fmt.Errorf("server error (undecodable: %v)", derr)
			}
			return wire.Data{}, 0, false, &ServerError{Msg: em.Msg}
		default:
			// Ignore unexpected frame types on the push stream.
		}
	}
}
