package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"esp/internal/stream"
	"esp/internal/wire"
)

// Client is a wire-protocol client for espd: the loadgen's and the
// tests' view of the daemon. One client wraps one connection; use
// separate clients for publishing and subscribing (a subscribed
// connection switches to server-push).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint64
	json bool // encode publishes with the JSON debug fallback
}

// Dial connects to an espd address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SetJSON switches publish encoding to the JSON debug fallback (the
// server accepts both; used to exercise the fallback path).
func (c *Client) SetJSON(on bool) { c.json = on }

// SetReadDeadline bounds blocking reads (zero time clears it) — used by
// consumers of an external daemon that cannot force a drain.
func (c *Client) SetReadDeadline(t time.Time) error { return c.conn.SetReadDeadline(t) }

// roundTrip sends one frame and reads the reply, surfacing protocol
// errors as Go errors.
func (c *Client) roundTrip(f wire.Frame) (wire.Frame, error) {
	if err := wire.WriteFrame(c.bw, f); err != nil {
		return wire.Frame{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Frame{}, err
	}
	r, err := wire.ReadFrame(c.br)
	if err != nil {
		return wire.Frame{}, err
	}
	if r.Type == wire.TypeError {
		em, derr := wire.DecodeError(r)
		if derr != nil {
			return wire.Frame{}, fmt.Errorf("server error (undecodable: %v)", derr)
		}
		return wire.Frame{}, fmt.Errorf("server: %s", em.Msg)
	}
	return r, nil
}

// Hello binds the connection to a tenant.
func (c *Client) Hello(tenant, role string) error {
	_, err := c.roundTrip(wire.Hello{Tenant: tenant, Role: role}.Frame())
	return err
}

// Create submits a pipeline spec and binds the connection to the new
// tenant.
func (c *Client) Create(tenant string, spec []byte) error {
	_, err := c.roundTrip(wire.Create{Tenant: tenant, Spec: spec}.Frame())
	return err
}

// Publish delivers readings for one receptor and returns the server's
// backpressure ack.
func (c *Client) Publish(receptorID string, ts []stream.Tuple) (wire.Ack, error) {
	c.seq++
	m := wire.Publish{Receptor: receptorID, Seq: c.seq, Tuples: ts}
	f := m.Frame()
	if c.json {
		f = m.FrameJSON()
	}
	r, err := c.roundTrip(f)
	if err != nil {
		return wire.Ack{}, err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		return wire.Ack{}, err
	}
	if ack.Seq != c.seq {
		return ack, fmt.Errorf("server acked seq %d, want %d", ack.Seq, c.seq)
	}
	return ack, nil
}

// Advance commits every epoch boundary up to now and returns once the
// server has flushed them — the client-side epoch barrier.
func (c *Client) Advance(now time.Time) error {
	c.seq++
	r, err := c.roundTrip(wire.Advance{Seq: c.seq, Now: now.UnixNano()}.Frame())
	if err != nil {
		return err
	}
	ack, err := wire.DecodeAck(r)
	if err != nil {
		return err
	}
	if ack.Seq != c.seq {
		return fmt.Errorf("server acked seq %d, want %d", ack.Seq, c.seq)
	}
	return nil
}

// Stats fetches the tenant's stats snapshot.
func (c *Client) Stats() (Stats, error) {
	r, err := c.roundTrip(wire.Frame{Type: wire.TypeStats})
	if err != nil {
		return Stats{}, err
	}
	var st Stats
	if err := json.Unmarshal(r.Payload, &st); err != nil {
		return Stats{}, err
	}
	return st, nil
}

// Subscribe attaches the connection to a tenant output stream. After a
// successful subscribe the connection is server-push: consume with
// Next until it reports done.
func (c *Client) Subscribe(tenant, streamName string) error {
	_, err := c.roundTrip(wire.Subscribe{Tenant: tenant, Stream: streamName}.Frame())
	return err
}

// Next reads the next Data frame on a subscribed connection. done
// reports a graceful end of stream (Drain received; final is its
// committed epoch).
func (c *Client) Next() (d wire.Data, final int64, done bool, err error) {
	for {
		f, rerr := wire.ReadFrame(c.br)
		if rerr != nil {
			return wire.Data{}, 0, false, rerr
		}
		switch f.Type {
		case wire.TypeData:
			d, err := wire.DecodeData(f)
			return d, 0, false, err
		case wire.TypeDrain:
			dr, derr := wire.DecodeDrain(f)
			return wire.Data{}, dr.FinalEpoch, true, derr
		case wire.TypeError:
			em, derr := wire.DecodeError(f)
			if derr != nil {
				return wire.Data{}, 0, false, fmt.Errorf("server error (undecodable: %v)", derr)
			}
			return wire.Data{}, 0, false, fmt.Errorf("server: %s", em.Msg)
		default:
			// Ignore unexpected frame types on the push stream.
		}
	}
}
