package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"text/tabwriter"
	"time"
)

// opsMounts builds the daemon's ops surfaces, mounted on the telemetry
// endpoint beside /metrics:
//
//	/healthz  liveness: 200 while serving and the WAL root is writable
//	/statusz  per-tenant table: epoch clock, sessions, backlog,
//	          staleness, resume horizon (?format=json for machines)
func (s *Server) opsMounts() map[string]http.Handler {
	return map[string]http.Handler{
		"/healthz": http.HandlerFunc(s.serveHealthz),
		"/statusz": http.HandlerFunc(s.serveStatusz),
	}
}

// serveHealthz answers liveness probes. Draining means "stop sending
// traffic" (503), and an unwritable WAL root means every journalled
// publish will fail — surfaced here before clients find out the hard
// way.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.eng.Drained() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if dir := s.eng.WALDir(); dir != "" {
		if err := probeWritable(dir); err != nil {
			http.Error(w, fmt.Sprintf("wal root not writable: %v", err), http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}

// probeWritable proves dir accepts writes by creating and removing a
// probe file (an existence check would miss a read-only remount).
func probeWritable(dir string) error {
	f, err := os.CreateTemp(dir, ".healthz-*")
	if err != nil {
		return err
	}
	name := f.Name()
	f.Close()
	return os.Remove(filepath.Join(dir, filepath.Base(name)))
}

// serveStatusz renders the per-tenant operational table a human checks
// first: where each tenant's epoch clock is, who is attached, and how
// stale its output is. ?format=json emits the same rows as a JSON
// array.
func (s *Server) serveStatusz(w http.ResponseWriter, r *http.Request) {
	tenants := s.eng.Tenants()
	statuses := make([]Status, len(tenants))
	for i, t := range tenants {
		statuses[i] = t.Status()
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(statuses)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "espd on %s — %d tenant(s)\n\n", s.Addr(), len(statuses))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TENANT\tEPOCH\tLAST\tEPOCHS\tSESS\tSUBS\tBACKLOG\tSTALE\tRETAINED\tDEDUP\tIDLEKILLS")
	for _, st := range statuses {
		last := "-"
		if st.LastEpoch != 0 {
			last = time.Unix(0, st.LastEpoch).UTC().Format(time.RFC3339Nano)
		}
		stale := "-"
		if st.StalenessNs != 0 {
			stale = time.Duration(st.StalenessNs).Round(time.Millisecond).String()
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\n",
			st.Tenant, st.Epoch, last, st.Epochs, st.Sessions, st.Subscribers,
			st.Backlog, stale, st.RetainedEpochs, st.DedupDrops, st.Stats.IdleKills)
	}
	_ = tw.Flush()
}
