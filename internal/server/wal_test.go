package server

import (
	"os"
	"path/filepath"
	"testing"

	"esp/internal/stream"
	"esp/internal/wal"
)

// pub publishes one batch and fails the test on error.
func pub(t *testing.T, ten *Tenant, rec string, ts ...stream.Tuple) {
	t.Helper()
	if _, err := ten.Publish(rec, ts); err != nil {
		t.Fatal(err)
	}
}

// collect drains every frame currently buffered on sub into fp.
func collect(fp *Fingerprint, sub *Subscription) {
	for {
		select {
		case d, ok := <-sub.C():
			if !ok {
				return
			}
			fp.Add(d)
		default:
			return
		}
	}
}

// TestEngineWALRecovery is the end-to-end durability contract: crash a
// journalled tenant mid-run, recover it in a fresh engine, finish the
// workload, and require the delivered output to be byte-identical to
// an uninterrupted run — including output that depends on window state
// spanning the crash point.
func TestEngineWALRecovery(t *testing.T) {
	spec := testSpec("")
	script := func(ten *Tenant, from, to int, fp *Fingerprint, sub *Subscription) {
		t.Helper()
		for e := from; e <= to; e++ {
			sec := float64(e - 1)
			pub(t, ten, "reader0", read(sec+0.2, "A", true), read(sec+0.6, "B", e%3 != 0))
			pub(t, ten, "reader1", read(sec+0.4, "A", e%2 == 0))
			if err := ten.Advance(at(float64(e))); err != nil {
				t.Fatal(err)
			}
			collect(fp, sub)
		}
	}
	const total, crashAt = 12, 7

	// Reference: uninterrupted, no WAL.
	ref := NewEngine(0)
	rt, err := ref.Create("shelf", spec)
	if err != nil {
		t.Fatal(err)
	}
	refSub, err := rt.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}
	refFP := NewFingerprint()
	script(rt, 1, total, refFP, refSub)
	if refFP.Frames() == 0 {
		t.Fatal("reference run produced no output")
	}

	// Journalled run, crashed after epoch crashAt.
	dir := t.TempDir()
	e1 := NewEngine(0)
	e1.SetWALDir(dir)
	t1, err := e1.Create("shelf", spec)
	if err != nil {
		t.Fatal(err)
	}
	sub1, err := t1.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}
	gotFP := NewFingerprint()
	script(t1, 1, crashAt, gotFP, sub1)
	t1.Crash()

	// Recover in a fresh engine (fresh process, morally).
	e2 := NewEngine(0)
	e2.SetWALDir(dir)
	reports, err := e2.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(reports) != 1 || reports[0].Tenant != "shelf" || reports[0].Epochs != crashAt {
		t.Fatalf("reports = %+v", reports)
	}
	t2, ok := e2.Tenant("shelf")
	if !ok {
		t.Fatal("tenant not recovered")
	}
	// Exactly-once resume: the clock stands at the crash epoch, and
	// re-advancing to it commits nothing.
	if !t2.Last().Equal(at(crashAt)) {
		t.Fatalf("recovered clock at %v, want %v", t2.Last(), at(crashAt))
	}
	before := t2.Stats().Epochs
	if err := t2.Advance(at(crashAt)); err != nil {
		t.Fatal(err)
	}
	if t2.Stats().Epochs != before {
		t.Fatal("advance to the recovered epoch re-committed it")
	}

	sub2, err := t2.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}
	script(t2, crashAt+1, total, gotFP, sub2)

	if gotFP.Sum() != refFP.Sum() || gotFP.Frames() != refFP.Frames() || gotFP.Tuples() != refFP.Tuples() {
		t.Fatalf("recovered output diverges: %v vs reference %v", gotFP, refFP)
	}

	// Drain stamps the catalog completed; the next boot skips replay.
	if err := t2.Drain(); err != nil {
		t.Fatal(err)
	}
	cat, err := wal.ReadCatalog(filepath.Join(dir, "shelf"))
	if err != nil {
		t.Fatal(err)
	}
	if !cat.Completed || cat.Epochs != total {
		t.Fatalf("catalog = %+v", cat)
	}
}

// TestEngineCreateResetsWAL: the alter path starts a fresh history —
// an altered pipeline must not replay the old pipeline's journal.
func TestEngineCreateResetsWAL(t *testing.T) {
	dir := t.TempDir()
	eng := NewEngine(0)
	eng.SetWALDir(dir)
	t1, err := eng.Create("shelf", testSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	pub(t, t1, "reader0", read(0.5, "A", true))
	if err := t1.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	t2, err := eng.Create("shelf", testSpec("")) // alter
	if err != nil {
		t.Fatal(err)
	}
	if rec := t2.Recovered(); rec != nil {
		t.Fatalf("alter replayed %d epochs of the old journal", len(rec.Epochs))
	}
	cat, err := wal.ReadCatalog(filepath.Join(dir, "shelf"))
	if err != nil {
		t.Fatal(err)
	}
	if cat.Epochs != 0 || cat.Completed {
		t.Fatalf("catalog after alter = %+v", cat)
	}
	if err := eng.DrainAll(); err != nil {
		t.Fatal(err)
	}
}

// TestEngineWALRejectsHostileNames: with journalling on, a tenant name
// must be usable as a directory name under the WAL root.
func TestEngineWALRejectsHostileNames(t *testing.T) {
	eng := NewEngine(0)
	eng.SetWALDir(t.TempDir())
	for _, name := range []string{"..", "a/b", `a\b`, "."} {
		if _, err := eng.Create(name, testSpec("")); err == nil {
			t.Errorf("name %q accepted with WAL enabled", name)
		}
	}
}

// TestTenantWALCounters: the wal_* counters ride the tenant registry.
func TestTenantWALCounters(t *testing.T) {
	eng := NewEngine(0)
	eng.SetWALDir(t.TempDir())
	ten, err := eng.Create("shelf", testSpec(""))
	if err != nil {
		t.Fatal(err)
	}
	pub(t, ten, "reader0", read(0.2, "A", true), read(0.4, "B", true))
	if err := ten.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	snap := ten.Registry().Snapshot()
	want := map[string]int64{"wal_publish_records": 1, "wal_publish_tuples": 2, "wal_commits": 1}
	for name, n := range want {
		if got := snap.Counters[name]; got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
	}
	if snap.Counters["wal_bytes"] == 0 {
		t.Error("wal_bytes = 0")
	}
	if err := ten.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestServerWALDirConfig: the config plumbs through Listen.
func TestServerWALDirConfig(t *testing.T) {
	dir := t.TempDir()
	s, err := Listen(Config{Addr: "127.0.0.1:0", WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.ln.Close()
	if got := s.Engine().WALDir(); got != dir {
		t.Fatalf("WALDir = %q, want %q", got, dir)
	}
	if _, err := s.Engine().Create("shelf", testSpec("")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shelf", "spec.json")); err != nil {
		t.Fatalf("spec not persisted: %v", err)
	}
	_ = s.Engine().DrainAll()
}
