package server

import (
	"context"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"esp/internal/netchaos"
	"esp/internal/stream"
)

// startServerCfg is startServer with explicit deadline/WAL knobs.
func startServerCfg(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// TestSessionPublishDedup: a publish replayed under its original seq is
// acked but not re-applied, and a second hello under the same session
// name rebinds it with the server's high-water mark in the ack.
func TestSessionPublishDedup(t *testing.T) {
	s := startServerCfg(t, Config{})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec("")); err != nil {
		t.Fatal(err)
	}

	c1 := dial(t, s)
	ack, err := c1.HelloSession("acme", "pub", "sess-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 0 {
		t.Fatalf("fresh session ack.Seq = %d, want 0", ack.Seq)
	}
	ts := []stream.Tuple{read(0.2, "X", true), read(0.4, "X", true)}
	if _, err := c1.PublishSeq("reader0", 1, ts); err != nil {
		t.Fatal(err)
	}
	// The replay: same seq, same payload — as after a lost ack.
	if _, err := c1.PublishSeq("reader0", 1, ts); err != nil {
		t.Fatalf("replayed publish must be acked, got %v", err)
	}

	st, err := ctl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesIn != 2 {
		t.Errorf("tuples_in = %d, want 2 (replay must not re-apply)", st.TuplesIn)
	}
	if st.DedupDrops != 1 {
		t.Errorf("dedup_drops = %d, want 1", st.DedupDrops)
	}

	// Reconnect: a new connection adopting the same session name.
	c2 := dial(t, s)
	ack, err = c2.HelloSession("acme", "pub", "sess-a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Seq != 1 {
		t.Errorf("rebind ack.Seq = %d, want 1 (the applied high-water mark)", ack.Seq)
	}
	if st, _ := ctl.Stats(); st.Reconnects != 1 {
		t.Errorf("reconnects = %d, want 1", st.Reconnects)
	}
	// An old seq from the zombie connection must still be deduped.
	if _, err := c1.PublishSeq("reader0", 1, ts); err != nil {
		t.Fatal(err)
	}
	if st, _ := ctl.Stats(); st.TuplesIn != 2 || st.DedupDrops != 2 {
		t.Errorf("after zombie replay: tuples_in=%d dedup_drops=%d, want 2/2", st.TuplesIn, st.DedupDrops)
	}
}

// commitEpoch publishes one distinct-tag reading and advances one
// epoch, so every epoch has arbitrated output.
func commitEpoch(t *testing.T, c *Client, epoch int, tag string) {
	t.Helper()
	sec := float64(epoch-1) + 0.5
	if _, err := c.Publish("reader0", []stream.Tuple{read(sec, tag, true)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(at(float64(epoch))); err != nil {
		t.Fatal(err)
	}
}

// TestSubscribeResumeRing: a subscriber that died mid-stream reattaches
// with its last delivered epoch and receives exactly the missed epochs
// from the in-memory retention ring, then goes live.
func TestSubscribeResumeRing(t *testing.T) {
	s := startServerCfg(t, Config{})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec("")); err != nil {
		t.Fatal(err)
	}

	c1 := dial(t, s)
	if err := c1.Subscribe("acme", "rfid"); err != nil {
		t.Fatal(err)
	}
	commitEpoch(t, ctl, 1, "A")
	d, _, _, err := c1.Next()
	if err != nil || d.Epoch != at(1).UnixNano() {
		t.Fatalf("epoch 1: %v (err %v)", d.Epoch, err)
	}
	c1.Close() // the link dies

	commitEpoch(t, ctl, 2, "B")
	commitEpoch(t, ctl, 3, "C")

	c2 := dial(t, s)
	attached, err := c2.SubscribeFrom("acme", "rfid", at(1).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if attached != at(3).UnixNano() {
		t.Errorf("attach epoch = %d, want %d", attached, at(3).UnixNano())
	}
	for i, want := range []time.Time{at(2), at(3)} {
		d, _, _, err := c2.Next()
		if err != nil {
			t.Fatalf("backlog frame %d: %v", i, err)
		}
		if d.Epoch != want.UnixNano() {
			t.Fatalf("backlog frame %d epoch = %d, want %d", i, d.Epoch, want.UnixNano())
		}
	}
	// And live delivery continues past the backlog.
	commitEpoch(t, ctl, 4, "D")
	if d, _, _, err = c2.Next(); err != nil || d.Epoch != at(4).UnixNano() {
		t.Fatalf("live epoch 4 after backlog: epoch=%d err=%v", d.Epoch, err)
	}

	if st, _ := ctl.Stats(); st.Resumes != 1 {
		t.Errorf("resumes = %d, want 1", st.Resumes)
	}
}

// TestSubscribeResumeArchive: with a one-epoch retention ring, a resume
// cursor behind the ring must be served from the WAL output archive —
// and without a WAL it must fail loudly instead of opening a gap.
func TestSubscribeResumeArchive(t *testing.T) {
	s := startServerCfg(t, Config{WALDir: t.TempDir()})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec(`,"quota":{"resume_horizon_epochs":1}`)); err != nil {
		t.Fatal(err)
	}
	for e, tag := range []string{"A", "B", "C", "D"} {
		commitEpoch(t, ctl, e+1, tag)
	}

	// Epochs 1-3 are long evicted from the ring; resume from epoch 1.
	c := dial(t, s)
	if _, err := c.SubscribeFrom("acme", "rfid", at(1).UnixNano()); err != nil {
		t.Fatal(err)
	}
	for i, want := range []time.Time{at(2), at(3), at(4)} {
		d, _, _, err := c.Next()
		if err != nil {
			t.Fatalf("archive frame %d: %v", i, err)
		}
		if d.Epoch != want.UnixNano() {
			t.Fatalf("archive frame %d epoch = %d, want %d", i, d.Epoch, want.UnixNano())
		}
	}

	// From genesis (negative cursor): every committed epoch replays.
	g := dial(t, s)
	if _, err := g.SubscribeFrom("acme", "rfid", -1); err != nil {
		t.Fatal(err)
	}
	d, _, _, err := g.Next()
	if err != nil || d.Epoch != at(1).UnixNano() {
		t.Fatalf("genesis resume first epoch = %d, err %v", d.Epoch, err)
	}
}

// TestSubscribeResumeBeyondHorizonFails: no WAL, one-epoch ring — a
// cursor behind the horizon cannot be honored and must be an error.
func TestSubscribeResumeBeyondHorizonFails(t *testing.T) {
	s := startServerCfg(t, Config{})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec(`,"quota":{"resume_horizon_epochs":1}`)); err != nil {
		t.Fatal(err)
	}
	for e, tag := range []string{"A", "B", "C"} {
		commitEpoch(t, ctl, e+1, tag)
	}
	c := dial(t, s)
	_, err := c.SubscribeFrom("acme", "rfid", at(1).UnixNano())
	if err == nil || !strings.Contains(err.Error(), "horizon") {
		t.Fatalf("resume beyond horizon: got %v, want horizon error", err)
	}
}

// TestIdleKill: a connection that goes silent past the idle timeout is
// killed and counted — against the tenant when hello-bound, against
// the server otherwise.
func TestIdleKill(t *testing.T) {
	s := startServerCfg(t, Config{IdleTimeout: 100 * time.Millisecond})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec("")); err != nil {
		t.Fatal(err)
	}

	bound := dial(t, s)
	if err := bound.Hello("acme", "pub"); err != nil {
		t.Fatal(err)
	}
	unbound, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer unbound.Close()

	// Both connections park. The server must reap them; the read
	// unblocks when the server closes the socket.
	_ = unbound.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := unbound.Read(make([]byte, 1)); err == nil {
		t.Fatal("parked unbound conn: read succeeded, want server-side close")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("parked unbound conn was not killed within 5s")
	}

	deadline := time.Now().Add(5 * time.Second)
	ten, _ := s.Engine().Tenant("acme")
	for ten.Stats().IdleKills == 0 {
		if time.Now().After(deadline) {
			t.Fatal("bound conn idle-kill not counted within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.idleKills.Load(); n == 0 {
		t.Error("server-level conn_idle_kills = 0, want ≥ 1 for the unbound conn")
	}
	// ctl idles out too eventually; that's fine — Stats above already ran.
}

// TestSlowSubscriberKicked: an in-process subscriber that stops reading
// is kicked when its buffer fills, without stalling the epoch clock or
// other subscribers.
func TestSlowSubscriberKicked(t *testing.T) {
	eng := NewEngine(0)
	ten, err := eng.Create("acme", testSpec(`,"quota":{"subscriber_buffer":1}`))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ten.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}
	live, err := ten.Subscribe("rfid")
	if err != nil {
		t.Fatal(err)
	}

	tags := []string{"A", "B", "C"}
	for e, tag := range tags {
		sec := float64(e) + 0.5
		if _, err := ten.Publish("reader0", []stream.Tuple{read(sec, tag, true)}); err != nil {
			t.Fatal(err)
		}
		if err := ten.Advance(at(float64(e + 1))); err != nil {
			t.Fatal(err)
		}
		<-live.C() // the healthy subscriber keeps up
	}

	if !slow.Lost() {
		t.Error("slow subscriber not kicked")
	}
	if st := ten.Stats(); st.Epochs != int64(len(tags)) {
		t.Errorf("epochs = %d, want %d — the slow subscriber stalled the clock", st.Epochs, len(tags))
	}
	if n := ten.subKicked.Load(); n != 1 {
		t.Errorf("serve_subscribers_kicked = %d, want 1", n)
	}
}

// bigRead is a reading with a distinct ~1KiB tag — bulk for filling
// socket buffers through the arbitrated output.
func bigRead(sec float64, tag string) stream.Tuple {
	return read(sec, tag+strings.Repeat("x", 1024), true)
}

// TestHalfOpenSubscriberKicked: a subscriber whose link stops draining
// (half-open: socket open, peer gone) must be kicked by the write
// deadline, not hang the push goroutine forever.
func TestHalfOpenSubscriberKicked(t *testing.T) {
	s := startServerCfg(t, Config{WriteTimeout: 250 * time.Millisecond})
	ctl := dial(t, s)
	if err := ctl.Create("acme", testSpec("")); err != nil {
		t.Fatal(err)
	}

	proxy, err := netchaos.Listen(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	halfOpen, err := Dial(proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer halfOpen.Close()
	if err := halfOpen.Subscribe("acme", "rfid"); err != nil {
		t.Fatal(err)
	}

	proxy.Stall() // frames stop draining; every socket stays open
	defer proxy.Resume()

	ten, _ := s.Engine().Tenant("acme")
	// Pump bulky epochs until the server's blocked write times out. The
	// smooth stage's 5s window keeps all distinct tags live, so each
	// epoch's frame carries every tag seen — buffers fill fast.
	deadline := time.Now().Add(10 * time.Second)
	for e := 1; ten.subKicked.Load() == 0; e++ {
		if time.Now().After(deadline) {
			t.Fatal("half-open subscriber not kicked within 10s")
		}
		ts := make([]stream.Tuple, 0, 64)
		for i := 0; i < 64; i++ {
			ts = append(ts, bigRead(float64(e-1)+0.5, string(rune('a'+e%26))+string(rune('a'+i%26))+string(rune('a'+i/26))))
		}
		if _, err := ctl.Publish("reader0", ts); err != nil {
			t.Fatal(err)
		}
		if err := ctl.Advance(at(float64(e))); err != nil {
			t.Fatal(err)
		}
	}
	// The tenant survived: it can still commit an epoch for a healthy
	// subscriber.
	fresh := dial(t, s)
	if _, err := fresh.SubscribeFrom("acme", "rfid", 0); err != nil {
		t.Fatal(err)
	}
}

// recordingClock is the fake Clock: Now is frozen, Sleep records.
type recordingClock struct {
	now    time.Time
	sleeps []time.Duration
}

func (c *recordingClock) Now() time.Time        { return c.now }
func (c *recordingClock) Sleep(d time.Duration) { c.sleeps = append(c.sleeps, d) }

// TestResilientBackoffDeterministic: the reconnect backoff sequence is
// capped exponential with seeded jitter — exactly reproducible under a
// fake clock, bounded by MaxAttempts, and seed-sensitive.
func TestResilientBackoffDeterministic(t *testing.T) {
	// A port that refuses connections: listen, then close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	run := func(seed int64) []time.Duration {
		clk := &recordingClock{now: time.Unix(1000, 0)}
		_, err := DialResilient(addr, "acme", "sess", RetryPolicy{
			MaxAttempts: 5,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  40 * time.Millisecond,
			Seed:        seed,
			Clock:       clk,
		})
		if err == nil {
			t.Fatal("dial to a closed port succeeded")
		}
		return clk.sleeps
	}

	got := run(42)
	// MaxAttempts 5 → backoff before attempts 1..4.
	if len(got) != 4 {
		t.Fatalf("got %d sleeps, want 4: %v", len(got), got)
	}
	rng := rand.New(rand.NewSource(42))
	for i, d := range got {
		base := 10 * time.Millisecond << i
		if base > 40*time.Millisecond {
			base = 40 * time.Millisecond
		}
		want := time.Duration(float64(base) * (0.5 + 0.5*rng.Float64()))
		if d != want {
			t.Errorf("sleep %d = %v, want %v", i, d, want)
		}
		if d < base/2 || d > base {
			t.Errorf("sleep %d = %v outside [%v, %v]", i, d, base/2, base)
		}
	}

	if again := run(42); len(again) != len(got) || again[0] != got[0] || again[3] != got[3] {
		t.Errorf("same seed replayed a different sequence: %v vs %v", again, got)
	}
	other := run(7)
	same := len(other) == len(got)
	for i := 0; same && i < len(got); i++ {
		same = other[i] == got[i]
	}
	if same {
		t.Error("seeds 42 and 7 produced identical backoff sequences")
	}
}
