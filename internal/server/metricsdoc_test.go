package server

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateMetricsDoc = flag.Bool("update", false, "rewrite docs/METRICS.md from a booted daemon")

// richSpec exercises every registration path the metrics doc must
// cover: multi-member groups (merge nodes), windows (pane gauges),
// static tables, a cross-type Virtualize, and WAL-backed tenants.
func richSpec() []byte {
	return []byte(`{
	  "deployment": {
	    "epoch": "1s",
	    "groups": {
	      "office-rfid":  {"type": "rfid", "members": ["r0", "r1"]},
	      "office-sound": {"type": "mote", "members": ["s0", "s1"]}
	    },
	    "pipelines": {
	      "rfid": {
	        "point": "SELECT tag_id FROM point_input WHERE checksum_ok = TRUE",
	        "smooth": "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id"
	      },
	      "mote": {
	        "smooth": "SELECT avg(noise) AS noise FROM smooth_input [Range By '2 sec']",
	        "merge": "SELECT avg(noise) AS noise FROM merge_input [Range By '1 sec']"
	      }
	    },
	    "virtualize": {
	      "query": "SELECT 'busy' AS event FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 500) AS a, (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS b WHERE a.cnt + b.cnt >= 2",
	      "bind": {"sensors_input": "mote", "rfid_input": "rfid"}
	    }
	  },
	  "receptors": [
	    {"id": "r0", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "r1", "type": "rfid", "schema": "tag_id:string,checksum_ok:bool"},
	    {"id": "s0", "type": "mote", "schema": "mote_id:string,noise:float"},
	    {"id": "s1", "type": "mote", "schema": "mote_id:string,noise:float"}
	  ]
	}`)
}

// metricsDocFromBoot boots a fully-featured daemon (WAL on, tracing on)
// with the rich spec and renders its metrics doc.
func metricsDocFromBoot(t *testing.T) string {
	t.Helper()
	cfg := Config{Addr: "127.0.0.1:0", WALDir: t.TempDir(), TraceSampleN: 4}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	if _, err := s.Engine().Create("doc", richSpec()); err != nil {
		t.Fatal(err)
	}
	fams, err := s.MetricFamilies()
	if err != nil {
		t.Fatal(err)
	}
	return RenderMetricsDoc(fams)
}

// TestMetricsDocDrift is the doc gate: docs/METRICS.md must match what
// a booted daemon registers, family for family. Run with -update to
// regenerate the page after adding a metric (and give the new family a
// help string, or generation itself fails).
func TestMetricsDocDrift(t *testing.T) {
	doc := metricsDocFromBoot(t)
	path := filepath.Join("..", "..", "docs", "METRICS.md")
	if *updateMetricsDoc {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("docs/METRICS.md unreadable (regenerate with -update): %v", err)
	}
	if string(got) != doc {
		t.Fatalf("docs/METRICS.md is stale: a registered metric family is missing or changed.\n"+
			"Regenerate with: go test ./internal/server -run TestMetricsDocDrift -update\n\n%s",
			firstDiff(string(got), doc))
	}
}

// firstDiff points at the first line where two renderings diverge.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + itoa(i+1) + ":\n  committed: " + al[i] + "\n  generated: " + bl[i]
		}
	}
	return "line " + itoa(min(len(al), len(bl))+1) + ": one rendering is a prefix of the other"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var d []byte
	for n > 0 {
		d = append([]byte{byte('0' + n%10)}, d...)
		n /= 10
	}
	return string(d)
}

// TestFamilyOf pins the name-collapsing rules the doc relies on.
func TestFamilyOf(t *testing.T) {
	cases := map[string]string{
		"node.leg rfid r0@office-rfid.tuples_in": "node.<label>.tuples_in",
		"node.virtualize.advance_ns":             "node.<label>.advance_ns",
		"node.merge mote office-sound.panics":    "node.<label>.panics",
		"stage.rfid/Point.tuples":                "stage.<type>/Point.tuples",
		"stage.mote/Arbitrate.tuples":            "stage.<type>/Arbitrate.tuples",
		"stage.virtualize.tuples":                "stage.virtualize.tuples",
		"poll.rfid.tuples":                       "poll.<type>.tuples",
		"receptor.r0.channel_pending":            "receptor.<id>.channel_pending",
		"receptor.s1.channel_dropped":            "receptor.<id>.channel_dropped",
		"serve_tuples_in":                        "serve_tuples_in",
		"wal_fsync_ns":                           "wal_fsync_ns",
	}
	for in, want := range cases {
		if got := familyOf(in); got != want {
			t.Errorf("familyOf(%q) = %q, want %q", in, got, want)
		}
	}
}
