package server

import (
	"fmt"
	"hash/fnv"

	"esp/internal/wire"
)

// Fingerprint is an order-sensitive FNV-1a digest over canonical Data
// frame bytes. Feeding the same sequence of epochs' output (no matter
// whether it arrived through a TCP subscription, an in-process
// Subscription, or was re-encoded from decoded tuples) yields the same
// sum — the oracle the serving layer is checked against: a
// server-hosted pipeline must produce byte-identical output to an
// in-process run of the same spec and input.
type Fingerprint struct {
	h      uint64
	frames int
	tuples int
}

// NewFingerprint starts an empty digest.
func NewFingerprint() *Fingerprint {
	h := fnv.New64a()
	return &Fingerprint{h: h.Sum64()}
}

// Add folds one Data frame into the digest (canonical binary encoding,
// so a frame that traveled as JSON hashes identically). The trace ID is
// zeroed first: tracing annotates frames, it must never change what the
// pipeline computed, so a traced run fingerprints identically to an
// untraced one.
func (fp *Fingerprint) Add(d wire.Data) {
	d.TraceID = 0
	b := d.Frame().Payload
	h := fp.h
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211 // FNV-1a prime
	}
	fp.h = h
	fp.frames++
	fp.tuples += len(d.Tuples)
}

// Sum reports the digest value.
func (fp *Fingerprint) Sum() uint64 { return fp.h }

// Frames reports how many Data frames were folded in.
func (fp *Fingerprint) Frames() int { return fp.frames }

// Tuples reports how many tuples the folded frames carried.
func (fp *Fingerprint) Tuples() int { return fp.tuples }

// String formats the digest for logs and bench reports.
func (fp *Fingerprint) String() string {
	return fmt.Sprintf("%016x (%d frames, %d tuples)", fp.h, fp.frames, fp.tuples)
}
