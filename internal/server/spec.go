// Package server implements the espd serving layer: a daemon hosting
// many independent ESP pipelines — one core.Processor per tenant —
// behind the wire protocol. The Engine owns tenant lifecycle and is
// fully usable in-process (the oracle differential and the loadgen
// smoke mode run it without a socket); Server fronts an Engine with
// TCP.
package server

import (
	"encoding/json"
	"fmt"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
)

// Spec is the document a control client submits to create a tenant
// pipeline: a deployment config (the same JSON espclean -config
// accepts) plus the receptor channels to provision and resource quotas.
//
//	{
//	  "deployment": {"epoch": "1s", "groups": {...}, "pipelines": {...}},
//	  "receptors": [{"id": "reader0", "type": "rfid",
//	                 "schema": "tag_id:string,checksum_ok:bool"}],
//	  "start": "1970-01-01T00:00:00Z",
//	  "quota": {"channel_cap": 4096, "max_publish_tuples": 8192}
//	}
type Spec struct {
	// Deployment is the core.DeploymentConfig JSON document.
	Deployment json.RawMessage `json:"deployment"`
	// Receptors declares the tenant's ingest channels.
	Receptors []ReceptorSpec `json:"receptors"`
	// Start anchors the tenant's epoch clock (RFC3339; default Unix
	// zero). Advance frames commit the boundaries in (start, now].
	Start string `json:"start,omitempty"`
	// Quota bounds the tenant's resource usage.
	Quota Quota `json:"quota,omitempty"`
}

// ReceptorSpec declares one ingest channel.
type ReceptorSpec struct {
	ID   string `json:"id"`
	Type string `json:"type"`
	// Schema is the device schema in "name:kind,..." form.
	Schema string `json:"schema"`
	// Cap overrides the quota's channel cap for this receptor.
	Cap int `json:"cap,omitempty"`
}

// Quota bounds a tenant's resource usage. Zero values mean the default.
type Quota struct {
	// ChannelCap bounds each receptor channel's unpolled backlog
	// (default receptor.DefaultChannelCap). The channel evicts oldest
	// readings past the cap — intake backpressure is reported, never
	// unbounded buffering.
	ChannelCap int `json:"channel_cap,omitempty"`
	// MaxPublishTuples bounds one publish frame's tuple count (default
	// 65536); larger frames are rejected.
	MaxPublishTuples int `json:"max_publish_tuples,omitempty"`
	// MaxSubscribers bounds concurrent subscribers (default 64).
	MaxSubscribers int `json:"max_subscribers,omitempty"`
	// MaxSessions bounds resumable publisher sessions (default 4096).
	// Sessions are tiny (a seq high-water mark) but client-named, so
	// the table must be capped against hostile churn.
	MaxSessions int `json:"max_sessions,omitempty"`
	// ResumeHorizonEpochs bounds the in-memory retention ring: how many
	// recent committed epochs' outputs are kept for fast subscriber
	// resume (default 128). Resumes from further back fall through to
	// the WAL archive, or fail when journalling is off.
	ResumeHorizonEpochs int `json:"resume_horizon_epochs,omitempty"`
	// SubscriberBuffer bounds each subscriber's Data frame buffer
	// (default 1024); a consumer that far behind is kicked.
	SubscriberBuffer int `json:"subscriber_buffer,omitempty"`
}

// Quota defaults.
const (
	DefaultMaxPublishTuples    = 1 << 16
	DefaultMaxSubscribers      = 64
	DefaultMaxSessions         = 4096
	DefaultResumeHorizonEpochs = 128
	DefaultSubscriberBuffer    = 1024
)

func (q Quota) maxPublishTuples() int {
	if q.MaxPublishTuples > 0 {
		return q.MaxPublishTuples
	}
	return DefaultMaxPublishTuples
}

func (q Quota) maxSubscribers() int {
	if q.MaxSubscribers > 0 {
		return q.MaxSubscribers
	}
	return DefaultMaxSubscribers
}

func (q Quota) maxSessions() int {
	if q.MaxSessions > 0 {
		return q.MaxSessions
	}
	return DefaultMaxSessions
}

func (q Quota) resumeHorizon() int {
	if q.ResumeHorizonEpochs > 0 {
		return q.ResumeHorizonEpochs
	}
	return DefaultResumeHorizonEpochs
}

func (q Quota) subscriberBuffer() int {
	if q.SubscriberBuffer > 0 {
		return q.SubscriberBuffer
	}
	return DefaultSubscriberBuffer
}

// parsedSpec is a Spec compiled into runtime objects.
type parsedSpec struct {
	dep   *core.Deployment
	chans map[string]*receptor.Channel
	start time.Time
	quota Quota
}

// parseSpec validates and compiles a spec document.
func parseSpec(data []byte) (*parsedSpec, error) {
	var spec Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("server: spec: %w", err)
	}
	if len(spec.Deployment) == 0 {
		return nil, fmt.Errorf("server: spec: missing deployment")
	}
	if len(spec.Receptors) == 0 {
		return nil, fmt.Errorf("server: spec: no receptors")
	}
	dep, err := core.ParseDeploymentConfig(spec.Deployment)
	if err != nil {
		return nil, fmt.Errorf("server: spec: %w", err)
	}
	ps := &parsedSpec{dep: dep, chans: make(map[string]*receptor.Channel, len(spec.Receptors)), quota: spec.Quota}
	for _, rs := range spec.Receptors {
		if rs.ID == "" || rs.Type == "" || rs.Schema == "" {
			return nil, fmt.Errorf("server: spec: receptor needs id, type, and schema (got %+v)", rs)
		}
		if _, dup := ps.chans[rs.ID]; dup {
			return nil, fmt.Errorf("server: spec: duplicate receptor %q", rs.ID)
		}
		schema, err := stream.ParseSchemaSpec(rs.Schema)
		if err != nil {
			return nil, fmt.Errorf("server: spec: receptor %q: %w", rs.ID, err)
		}
		ch := receptor.NewChannel(rs.ID, receptor.Type(rs.Type), schema)
		if cap := rs.Cap; cap > 0 {
			ch.SetCap(cap)
		} else if spec.Quota.ChannelCap > 0 {
			ch.SetCap(spec.Quota.ChannelCap)
		}
		ps.chans[rs.ID] = ch
		dep.Receptors = append(dep.Receptors, ch)
	}
	if spec.Start != "" {
		t, err := time.Parse(time.RFC3339Nano, spec.Start)
		if err != nil {
			return nil, fmt.Errorf("server: spec: bad start: %w", err)
		}
		ps.start = t.UTC()
	} else {
		ps.start = time.Unix(0, 0).UTC()
	}
	ps.start = ps.start.Truncate(dep.Epoch)
	return ps, nil
}
