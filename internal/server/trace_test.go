package server

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"esp/internal/stream"
	"esp/internal/telemetry"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from tenant actor goroutines.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// spanNames collects the distinct span names recorded for one trace ID
// across a set of tracers.
func spanNames(id telemetry.TraceID, tracers ...*telemetry.Tracer) map[string]int {
	names := make(map[string]int)
	for _, tr := range tracers {
		for _, sp := range tr.ByTrace()[id] {
			names[sp.Name]++
		}
	}
	return names
}

// TestTraceEndToEnd is the acceptance test for the tracing plane: over
// a live TCP connection, one trace ID minted by the client must be
// observable at every hop — client publish, server apply, WAL fsync,
// pipeline step, the stage spans, subscriber delivery, and the client's
// own receipt of the Data frame — and the slow-epoch log line must
// carry the same ID as its exemplar.
func TestTraceEndToEnd(t *testing.T) {
	var logBuf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))

	cfg := Config{
		Addr:         "127.0.0.1:0",
		WALDir:       t.TempDir(), // real fsync: the wal.fsync span must fire
		TraceSampleN: 1,
		TraceSeed:    42,
		SlowEpoch:    time.Nanosecond, // every epoch is "slow": forces the exemplar log
		Logger:       logger,
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})

	clientTracer := telemetry.NewTracer(1, 7) // trace every frame
	ctl := dial(t, s)
	ctl.SetTracer(clientTracer)
	if err := ctl.Create("traced", testSpec("")); err != nil {
		t.Fatal(err)
	}

	subc := dial(t, s)
	subc.SetTracer(clientTracer)
	if err := subc.Subscribe("traced", "rfid"); err != nil {
		t.Fatal(err)
	}

	// First traced publish wins the exemplar slot for the epoch.
	ack, err := ctl.Publish("reader0", []stream.Tuple{read(0.2, "X", true), read(0.4, "X", true)})
	if err != nil {
		t.Fatal(err)
	}
	_ = ack
	if _, err := ctl.Publish("reader1", []stream.Tuple{read(0.3, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Advance(at(1)); err != nil {
		t.Fatal(err)
	}

	d, _, done, err := subc.Next()
	if err != nil || done {
		t.Fatalf("Next: %v (done=%v)", err, done)
	}
	if d.TraceID == 0 {
		t.Fatal("delivered Data frame carries no trace ID")
	}
	id := telemetry.TraceID(d.TraceID)

	// The client's first publish span must own the same ID: the
	// exemplar is the earliest traced publish of the epoch.
	var pubIDs []telemetry.TraceID
	for _, sp := range clientTracer.Spans() {
		if sp.Name == "client.publish" {
			pubIDs = append(pubIDs, sp.TraceID)
		}
	}
	if len(pubIDs) != 2 {
		t.Fatalf("client recorded %d publish spans, want 2", len(pubIDs))
	}
	if pubIDs[0] != id && pubIDs[1] != id {
		t.Fatalf("delivered trace %s matches neither publish span (%s, %s)", id, pubIDs[0], pubIDs[1])
	}

	// subscriber.deliver is recorded on the push goroutine after the
	// socket write; the client can observe the frame first. Poll.
	want := []string{
		"client.publish", "server.apply", "wal.fsync",
		"pipeline.step", "subscriber.deliver", "client.deliver",
	}
	deadline := time.Now().Add(5 * time.Second)
	var names map[string]int
	for {
		names = spanNames(id, s.Tracer(), clientTracer)
		missing := 0
		for _, n := range want {
			if names[n] == 0 {
				missing++
			}
		}
		if missing == 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range want {
		if names[n] == 0 {
			t.Errorf("trace %s missing span %q (got %v)", id, n, names)
		}
	}
	// At least one stage-level span must be attributed to the trace.
	stages := 0
	for n, c := range names {
		if strings.HasPrefix(n, "stage.") {
			stages += c
		}
	}
	if stages == 0 {
		t.Errorf("trace %s has no stage.* spans (got %v)", id, names)
	}

	// The slow-epoch structured event carries the exemplar ID in hex.
	logs := logBuf.String()
	if !strings.Contains(logs, "slow epoch") {
		t.Fatalf("no slow-epoch event logged:\n%s", logs)
	}
	if !strings.Contains(logs, id.String()) {
		t.Errorf("slow-epoch event does not carry exemplar trace %s:\n%s", id, logs)
	}
}

// TestTraceUntracedFramesStayDark proves the off path: without a client
// tracer the server (sampling only advance-driven epochs at N=1) still
// traces, but a server with tracing disabled must deliver Data frames
// with a zero trace ID and record nothing.
func TestTraceUntracedFramesStayDark(t *testing.T) {
	s := startServer(t, false) // no TraceSampleN: tracing off
	ctl := dial(t, s)
	if err := ctl.Create("dark", testSpec("")); err != nil {
		t.Fatal(err)
	}
	subc := dial(t, s)
	if err := subc.Subscribe("dark", "rfid"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Publish("reader0", []stream.Tuple{read(0.2, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	d, _, done, err := subc.Next()
	if err != nil || done {
		t.Fatalf("Next: %v (done=%v)", err, done)
	}
	if d.TraceID != 0 {
		t.Fatalf("tracing disabled but Data carries trace %x", d.TraceID)
	}
	if tr := s.Tracer(); tr != nil {
		t.Fatalf("tracing disabled but server has a tracer")
	}
}

// TestTraceServerSampledAdvance proves the server-side sampling origin:
// with no client tracer at all, a server at TraceSampleN=1 samples the
// advance and the epoch's spans hang off that trace.
func TestTraceServerSampledAdvance(t *testing.T) {
	cfg := Config{Addr: "127.0.0.1:0", TraceSampleN: 1, TraceSeed: 1}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve() //nolint:errcheck
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	ctl := dial(t, s)
	if err := ctl.Create("srv", testSpec("")); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Publish("reader0", []stream.Tuple{read(0.2, "X", true)}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Advance(at(1)); err != nil {
		t.Fatal(err)
	}
	byTrace := s.Tracer().ByTrace()
	if len(byTrace) == 0 {
		t.Fatal("server sampled nothing")
	}
	found := false
	for id, spans := range byTrace {
		names := spanNames(id, s.Tracer())
		if names["server.advance"] > 0 && names["pipeline.step"] > 0 {
			found = true
		}
		_ = spans
	}
	if !found {
		t.Fatalf("no trace links server.advance to pipeline.step: %v", byTrace)
	}
}
