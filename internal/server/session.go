package server

import (
	"fmt"
	"time"

	"esp/internal/stream"
	"esp/internal/wire"
)

// session is one client-chosen publisher identity, surviving the
// connections that carry it. lastSeq is the highest publish seq the
// tenant has applied for the session; seqs at or below it are
// duplicates from a reconnect replay (the original was applied but its
// ack was lost in flight) and are dropped instead of re-applied —
// the server half of the exactly-once resume contract.
type session struct {
	lastSeq uint64
}

// AttachSession binds (or re-binds) a session ID to the tenant and
// reports the resume state a reconnecting client needs: the session's
// last applied publish seq and the tenant's last committed epoch.
// Re-attaching an existing ID is a reconnect and is counted as one.
func (t *Tenant) AttachSession(id string) (lastSeq uint64, lastEpoch int64, err error) {
	t.sessMu.Lock()
	s, ok := t.sessions[id]
	if !ok {
		if len(t.sessions) >= t.quota.maxSessions() {
			t.sessMu.Unlock()
			return 0, 0, fmt.Errorf("server: tenant %q session quota (%d) exhausted", t.name, t.quota.maxSessions())
		}
		s = &session{}
		t.sessions[id] = s
	}
	lastSeq = s.lastSeq
	t.sessMu.Unlock()
	if ok {
		t.reconnects.Add(1)
	}
	return lastSeq, t.Last().UnixNano(), nil
}

// PublishSession is Publish with exactly-once dedup: a seq at or below
// the session's high-water mark is acknowledged (with the channel's
// current backpressure state) but not re-applied. The session lock is
// held across the apply so a zombie connection replaying the same seq
// cannot interleave with the live one.
func (t *Tenant) PublishSession(id string, seq uint64, rec string, ts []stream.Tuple) (wire.Ack, error) {
	return t.PublishSessionTraced(id, seq, rec, ts, 0)
}

// PublishSessionTraced is PublishSession carrying the frame's trace
// context (see PublishTraced). A deduplicated replay is not traced —
// nothing was applied.
func (t *Tenant) PublishSessionTraced(id string, seq uint64, rec string, ts []stream.Tuple, traceID uint64) (wire.Ack, error) {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		return wire.Ack{}, fmt.Errorf("server: tenant %q has no session %q (hello first)", t.name, id)
	}
	if seq <= s.lastSeq {
		ch, ok := t.chans[rec]
		if !ok {
			return wire.Ack{}, fmt.Errorf("server: tenant %q has no receptor %q", t.name, rec)
		}
		t.dedupDrops.Add(1)
		return wire.Ack{
			Pending: int64(ch.Pending()),
			Cap:     int64(ch.Cap()),
			Dropped: ch.Dropped(),
		}, nil
	}
	ack, err := t.PublishTraced(rec, ts, traceID)
	if err != nil {
		return ack, err
	}
	s.lastSeq = seq
	return ack, nil
}

// retainedEpoch is one committed epoch's output frames, kept in the
// tenant's in-memory retention ring so a reconnecting subscriber can
// be caught up without touching disk.
type retainedEpoch struct {
	epoch  int64
	frames []wire.Data // sorted by stream name
}

// retainLocked appends one committed epoch's frames to the ring,
// evicting the oldest entry past the horizon. Runs on the actor.
func (t *Tenant) retainLocked(epoch int64, frames []wire.Data) {
	if len(frames) == 0 {
		return
	}
	t.retained = append(t.retained, retainedEpoch{epoch: epoch, frames: frames})
	for len(t.retained) > t.quota.resumeHorizon() {
		t.evictedThrough = t.retained[0].epoch
		t.retained = t.retained[1:]
	}
}

// resumeBacklogLocked builds the Data frames a subscriber resuming
// from fromEpoch (exclusive) must be sent before going live: from the
// retention ring when it still covers the cursor, else from the WAL
// archive segments. Runs on the actor, so no epoch can commit between
// the snapshot and the subscriber attach — resume is gapless and
// duplicate-free by construction.
func (t *Tenant) resumeBacklogLocked(streamName string, fromEpoch int64) ([]wire.Data, error) {
	// evictedThrough == 0 means nothing has ever been evicted: the ring
	// still holds every output-bearing epoch, so any cursor (including
	// the negative from-genesis sentinel) is within the horizon.
	if t.evictedThrough == 0 || fromEpoch >= t.evictedThrough {
		var out []wire.Data
		for _, re := range t.retained {
			if re.epoch <= fromEpoch {
				continue
			}
			for _, d := range re.frames {
				if d.Stream == streamName {
					out = append(out, d)
				}
			}
		}
		return out, nil
	}
	if t.jl == nil {
		return nil, fmt.Errorf("server: tenant %q: resume from epoch %d is beyond the retention horizon (oldest retained > %d) and no WAL archive is configured",
			t.name, fromEpoch, t.evictedThrough)
	}
	epochs, err := t.jl.OutputsSince(time.Unix(0, fromEpoch).UTC())
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: archive resume: %w", t.name, err)
	}
	var out []wire.Data
	for _, ae := range epochs {
		for _, o := range ae.Outputs {
			if o.Stream == streamName {
				out = append(out, wire.Data{Stream: o.Stream, Epoch: ae.Epoch.UnixNano(), Tuples: o.Tuples})
			}
		}
	}
	return out, nil
}

// ResumeSubscribe attaches a consumer like Subscribe, but first
// returns the backlog of committed epochs strictly after fromEpoch
// (their Data frames, in epoch order) so a reconnecting subscriber
// resumes exactly where it left off. fromEpoch 0 is a plain live-only
// subscribe; a negative fromEpoch resumes from genesis (every retained
// committed epoch). The returned Subscription records the attach
// epoch — the boundary committed last at the instant of attach — which
// is the cursor a client that has received nothing yet must resume
// from.
func (t *Tenant) ResumeSubscribe(streamName string, fromEpoch int64) (*Subscription, []wire.Data, error) {
	sub := &subscriber{stream: streamName, ch: make(chan wire.Data, t.quota.subscriberBuffer())}
	var backlog []wire.Data
	var attached int64
	err := t.do(func() error {
		if len(t.subs) >= t.quota.maxSubscribers() {
			return fmt.Errorf("server: tenant %q subscriber quota (%d) exhausted", t.name, t.quota.maxSubscribers())
		}
		if fromEpoch != 0 {
			bl, err := t.resumeBacklogLocked(streamName, fromEpoch)
			if err != nil {
				return err
			}
			backlog = bl
			t.resumes.Add(1)
		}
		attached = t.last.UnixNano()
		t.subs = append(t.subs, sub)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return &Subscription{t: t, sub: sub, attached: attached}, backlog, nil
}
