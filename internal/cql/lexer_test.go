package cql

import (
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicQuery(t *testing.T) {
	toks, err := Lex("SELECT shelf, count(distinct tag_id) FROM rfid_data [Range By '5 sec'] GROUP BY shelf")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "shelf"}, {TokSymbol, ","},
		{TokIdent, "count"}, {TokSymbol, "("}, {TokKeyword, "DISTINCT"},
		{TokIdent, "tag_id"}, {TokSymbol, ")"}, {TokKeyword, "FROM"},
		{TokIdent, "rfid_data"}, {TokSymbol, "["}, {TokKeyword, "RANGE"},
		{TokKeyword, "BY"}, {TokString, "5 sec"}, {TokSymbol, "]"},
		{TokKeyword, "GROUP"}, {TokKeyword, "BY"}, {TokIdent, "shelf"},
		{TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("a <= b >= c <> d != e < f > g = h")
	if err != nil {
		t.Fatal(err)
	}
	var syms []string
	for _, tok := range toks {
		if tok.Kind == TokSymbol {
			syms = append(syms, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "<>", "<", ">", "="}
	if len(syms) != len(want) {
		t.Fatalf("symbols = %v, want %v", syms, want)
	}
	for i := range want {
		if syms[i] != want[i] {
			t.Errorf("symbol %d = %q, want %q", i, syms[i], want[i])
		}
	}
}

func TestLexNumbersAndQualified(t *testing.T) {
	toks, err := Lex("1.5 42 ai1.tag_id .5")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1.5" || toks[0].Kind != TokNumber {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[1].Text != "42" {
		t.Errorf("tok1 = %v", toks[1])
	}
	// Qualified name lexes as ident, dot, ident.
	if toks[2].Text != "ai1" || toks[3].Text != "." || toks[4].Text != "tag_id" {
		t.Errorf("qualified = %v %v %v", toks[2], toks[3], toks[4])
	}
	if toks[5].Text != ".5" || toks[5].Kind != TokNumber {
		t.Errorf("leading-dot float = %v", toks[5])
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := Lex("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "it's" {
		t.Errorf("escaped string = %v", toks[0])
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT -- trailing comment\n x")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "x" {
		t.Errorf("comment handling: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string: want error")
	}
	if _, err := Lex("a ; b"); err == nil {
		t.Error("stray semicolon: want error")
	}
	if _, err := Lex("a {"); err == nil {
		t.Error("stray brace: want error")
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From WHERE gRoUp")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"SELECT", "FROM", "WHERE", "GROUP"} {
		if toks[i].Kind != TokKeyword || toks[i].Text != want {
			t.Errorf("token %d = %v, want keyword %s", i, toks[i], want)
		}
	}
}
