package cql

import (
	"fmt"
	"strings"

	"esp/internal/stream"
)

// planStreamTableJoin plans `FROM <stream>, <table> WHERE s.k = t.k ...`:
// the paper's static-relation joins (expected-tag filtering, inventory
// lookups). If no table column escapes into SELECT or the residual WHERE,
// the join is planned as a semi-join, preserving the stream schema.
func (p *planner) planStreamTableJoin(stmt *SelectStmt, si, ti *FromItem) (*stream.Graph, error) {
	lg, err := p.planLegStreamTable(stmt, si, ti)
	if err != nil {
		return nil, err
	}
	lg.ops = p.optimize("leg "+lg.input, lg.ops)
	p.noteLeg(lg)
	g := stream.NewGraph()
	in, ok := p.cat[lg.input]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q", lg.input)
	}
	if err := g.AddLeg(lg.input, in, stream.NewChain(lg.ops...)); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *planner) planLegStreamTable(stmt *SelectStmt, si, ti *FromItem) (*leg, error) {
	if si.Sub != nil {
		return nil, fmt.Errorf("cql: table join with a subquery source is not supported")
	}
	table := p.cfg.Tables[ti.Stream]
	streamSchema, ok := p.cat[si.Stream]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q", si.Stream)
	}
	sb, tb := si.Binding(), ti.Binding()

	conjs := splitConjuncts(stmt.Where)
	var joinStreamCol, joinTableCol string
	var residual []ExprNode
	for _, c := range conjs {
		sc, tc, ok := joinEquality(c, sb, tb, streamSchema, table.Schema())
		if ok && joinStreamCol == "" {
			joinStreamCol, joinTableCol = sc, tc
			continue
		}
		residual = append(residual, c)
	}
	if joinStreamCol == "" {
		return nil, fmt.Errorf("cql: stream-table join requires an equality predicate between a stream and a table column")
	}

	// Does anything reference the table beyond the join key?
	tableRef := false
	check := func(n ExprNode) {
		if refersToSource(n, tb, table.Schema(), streamSchema) {
			tableRef = true
		}
	}
	for _, it := range stmt.Items {
		if !it.Star {
			check(it.Expr)
		}
	}
	for _, r := range residual {
		check(r)
	}
	for _, g := range stmt.GroupBy {
		check(g)
	}
	if stmt.Having != nil {
		check(stmt.Having)
	}

	mode := stream.JoinSemi
	names := fieldNames(streamSchema)
	if tableRef {
		mode = stream.JoinInner
		names = append(names, fieldNames(table.Schema())...)
	}
	lg := &leg{input: si.Stream, out: hintSchema(names)}
	lg.push(&stream.JoinStatic{Table: table, StreamCol: joinStreamCol, TableCol: joinTableCol, Mode: mode})

	res := namesResolver(names)
	joined := &SelectStmt{
		Items:   stmt.Items,
		Where:   joinConjuncts(residual),
		GroupBy: stmt.GroupBy,
		Having:  stmt.Having,
	}
	if err := p.applySelect(lg, joined, si.Window, res); err != nil {
		return nil, err
	}
	return lg, nil
}

// isSelfAggJoin recognises the paper's Query 5 shape: a raw stream joined
// with an aggregating subquery over the same stream.
func (p *planner) isSelfAggJoin(stmt *SelectStmt, items []FromItem) bool {
	if len(items) != 2 {
		return false
	}
	raw, sub := orderSelfJoin(items)
	if raw == nil || sub == nil {
		return false
	}
	subStreams, subTables := p.splitFrom(sub.Sub.From)
	return len(subStreams) == 1 && len(subTables) == 0 &&
		subStreams[0].Sub == nil && subStreams[0].Stream == raw.Stream &&
		len(sub.Sub.GroupBy) > 0
}

func orderSelfJoin(items []FromItem) (raw, sub *FromItem) {
	for i := range items {
		switch {
		case items[i].Sub == nil && raw == nil:
			raw = &items[i]
		case items[i].Sub != nil && sub == nil:
			sub = &items[i]
		default:
			return nil, nil
		}
	}
	return raw, sub
}

// planSelfAggJoin plans Query 5: SelfJoin(raw ⋈ own window aggregate) →
// residual filter → outer aggregation → projection.
func (p *planner) planSelfAggJoin(stmt *SelectStmt, items []FromItem) (*stream.Graph, error) {
	raw, sub := orderSelfJoin(items)
	base, ok := p.cat[raw.Stream]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q", raw.Stream)
	}
	subStmt := sub.Sub
	subFrom := subStmt.From[0]
	if subStmt.Where != nil {
		return nil, fmt.Errorf("cql: WHERE inside the aggregate side of a self-join is not supported")
	}

	// Window: prefer the raw side's spec; both sides must agree if given.
	window := raw.Window
	if window == nil {
		window = subFrom.Window
	}
	if window == nil {
		return nil, fmt.Errorf("cql: self-join requires a [Range By ...] window")
	}
	if raw.Window != nil && subFrom.Window != nil &&
		(raw.Window.Now != subFrom.Window.Now || raw.Window.Range != subFrom.Window.Range) {
		return nil, fmt.Errorf("cql: self-join windows disagree: %s vs %s", raw.Window, subFrom.Window)
	}
	rangeDur, slide, err := p.windowParams(window)
	if err != nil {
		return nil, err
	}

	baseRes := singleResolver(subFrom.Binding(), base)
	sj := &stream.SelfJoin{
		Range: rangeDur, Slide: slide,
		RawPrefix: raw.Binding() + ".",
		AggPrefix: sub.Binding() + ".",
	}
	var groupNames []string
	for i, g := range subStmt.GroupBy {
		name := groupName(g, i)
		e, err := compileExpr(g, baseRes, nil)
		if err != nil {
			return nil, fmt.Errorf("cql: self-join GROUP BY: %w", err)
		}
		sj.GroupBy = append(sj.GroupBy, stream.NamedExpr{Name: name, Expr: e})
		groupNames = append(groupNames, name)
	}
	subAggs := collectAggs(subStmt)
	if len(subAggs) == 0 {
		return nil, fmt.Errorf("cql: self-join subquery must aggregate")
	}
	aliasFor := aggAliases(subStmt)
	for i, a := range subAggs {
		spec, err := buildAggSpec(a, baseRes)
		if err != nil {
			return nil, err
		}
		name := aliasFor[a.String()]
		if name == "" {
			name = fmt.Sprintf("__agg%d", i)
		}
		spec.Name = name
		sj.Aggs = append(sj.Aggs, spec)
	}

	// Combined output names.
	var names []string
	for _, f := range base.Fields() {
		names = append(names, sj.RawPrefix+f.Name)
	}
	for _, g := range groupNames {
		names = append(names, sj.AggPrefix+g)
	}
	for _, a := range sj.Aggs {
		names = append(names, sj.AggPrefix+a.Name)
	}
	combinedRes := namesResolver(names)

	// Split WHERE: drop the join-equality conjuncts (a.g = s.g on group
	// columns), keep the rest as a residual filter.
	var residual []ExprNode
	for _, c := range splitConjuncts(stmt.Where) {
		if isSelfJoinEquality(c, raw.Binding(), sub.Binding(), groupNames) {
			continue
		}
		residual = append(residual, c)
	}

	lg := &leg{input: raw.Stream, out: hintSchema(names)}
	lg.push(sj)
	outer := &SelectStmt{
		Items:   stmt.Items,
		Where:   joinConjuncts(residual),
		GroupBy: stmt.GroupBy,
		Having:  stmt.Having,
	}
	// The joined tuples form one epoch per boundary: the outer
	// aggregation uses a NOW window.
	if err := p.applySelect(lg, outer, &WindowSpec{Now: true, Raw: "NOW"}, combinedRes); err != nil {
		return nil, err
	}
	lg.ops = p.optimize("leg "+lg.input, lg.ops)
	p.noteLeg(lg)

	g := stream.NewGraph()
	if err := g.AddLeg(raw.Stream, base, stream.NewChain(lg.ops...)); err != nil {
		return nil, err
	}
	return g, nil
}

// planCombine plans the Query 6 shape: N windowed subqueries over distinct
// streams, combined once per epoch, filtered and projected.
func (p *planner) planCombine(stmt *SelectStmt, items []FromItem) (*stream.Graph, error) {
	if len(stmt.GroupBy) > 0 || stmt.Having != nil {
		return nil, fmt.Errorf("cql: GROUP BY/HAVING over combined subqueries is not supported")
	}
	g := stream.NewGraph()
	comb := &stream.EpochCombiner{}
	var legNames []string
	var names []string
	seen := make(map[string]bool)
	for i := range items {
		it := &items[i]
		lg, err := p.planLeg(it.Sub, &it.Sub.From[0])
		if err != nil {
			return nil, err
		}
		if err := p.applyLegSelectForCombine(lg, it); err != nil {
			return nil, err
		}
		lg.ops = p.optimize("leg "+lg.input, lg.ops)
		p.noteLeg(lg)
		if seen[lg.input] {
			return nil, fmt.Errorf("cql: combined subqueries must read distinct streams (%q repeated)", lg.input)
		}
		seen[lg.input] = true
		in, ok := p.cat[lg.input]
		if !ok {
			return nil, fmt.Errorf("cql: unknown stream %q", lg.input)
		}
		if err := g.AddLeg(lg.input, in, stream.NewChain(lg.ops...)); err != nil {
			return nil, err
		}
		prefix := it.Binding() + "."
		comb.Inputs = append(comb.Inputs, stream.CombineInput{
			Prefix:  prefix,
			Default: combineDefaults(it.Sub),
		})
		legNames = append(legNames, lg.input)
		for _, f := range lg.out.Fields() {
			names = append(names, prefix+f.Name)
		}
	}
	if err := g.SetCombiner(comb, legNames...); err != nil {
		return nil, err
	}
	res := namesResolver(names)
	var post []stream.Operator
	if stmt.Where != nil {
		pred, err := compileExpr(stmt.Where, res, nil)
		if err != nil {
			return nil, err
		}
		post = append(post, stream.NewFilter(pred))
	}
	proj, err := p.compileProjection(stmt.Items, res, nil)
	if err != nil {
		return nil, err
	}
	post = append(post, proj)
	post = p.optimize("post", post)
	if p.explain != nil {
		p.explain.Post = describeOps(post)
	}
	g.SetPost(stream.NewChain(post...))
	return g, nil
}

// applyLegSelectForCombine is a no-op hook kept for symmetry: planLeg has
// already applied the subquery's own SELECT processing.
func (p *planner) applyLegSelectForCombine(*leg, *FromItem) error { return nil }

// combineDefaults derives the absent-epoch default row for a combine
// input: numeric constant select items default to zero (so vote sums
// treat absence as zero votes), everything else to NULL.
func combineDefaults(sub *SelectStmt) []stream.Value {
	defaults := make([]stream.Value, 0, len(sub.Items))
	for _, it := range sub.Items {
		if it.Star {
			return nil // unknown arity: fall back to NULLs
		}
		switch e := it.Expr.(type) {
		case *NumberLit:
			if e.IsFloat() {
				defaults = append(defaults, stream.Float(0))
			} else {
				defaults = append(defaults, stream.Int(0))
			}
		default:
			defaults = append(defaults, stream.Null())
		}
	}
	return defaults
}

// splitConjuncts flattens a WHERE tree into AND-ed conjuncts.
func splitConjuncts(n ExprNode) []ExprNode {
	if n == nil {
		return nil
	}
	if b, ok := n.(*BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []ExprNode{n}
}

// joinConjuncts rebuilds an AND tree (nil for empty).
func joinConjuncts(conjs []ExprNode) ExprNode {
	var out ExprNode
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// joinEquality reports whether conj is `streamCol = tableCol` (either
// order) between the given bindings/schemas.
func joinEquality(conj ExprNode, sb, tb string, ss, ts *stream.Schema) (string, string, bool) {
	b, ok := conj.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return "", "", false
	}
	l, lok := b.L.(*Ident)
	r, rok := b.R.(*Ident)
	if !lok || !rok {
		return "", "", false
	}
	classify := func(id *Ident) (isStream, isTable bool) {
		switch {
		case id.Qualifier != "" && strings.EqualFold(id.Qualifier, sb):
			isStream = true
		case id.Qualifier != "" && strings.EqualFold(id.Qualifier, tb):
			isTable = true
		case id.Qualifier == "":
			_, inS := ss.Index(id.Name)
			_, inT := ts.Index(id.Name)
			isStream, isTable = inS && !inT, inT && !inS
		}
		return
	}
	ls, lt := classify(l)
	rs, rt := classify(r)
	switch {
	case ls && rt:
		return l.Name, r.Name, true
	case rs && lt:
		return r.Name, l.Name, true
	}
	return "", "", false
}

// isSelfJoinEquality reports whether conj equates a group column between
// the raw and aggregate sides of a self join.
func isSelfJoinEquality(conj ExprNode, rawB, subB string, groups []string) bool {
	b, ok := conj.(*BinaryExpr)
	if !ok || b.Op != "=" {
		return false
	}
	l, lok := b.L.(*Ident)
	r, rok := b.R.(*Ident)
	if !lok || !rok || !strings.EqualFold(l.Name, r.Name) || !containsString(groups, l.Name) {
		return false
	}
	quals := map[string]bool{strings.ToLower(l.Qualifier): true, strings.ToLower(r.Qualifier): true}
	return quals[strings.ToLower(rawB)] && quals[strings.ToLower(subB)]
}

// refersToSource reports whether any identifier in n belongs to the table
// side (binding tb or a column only the table schema has).
func refersToSource(n ExprNode, tb string, ts, ss *stream.Schema) bool {
	found := false
	var walk func(ExprNode)
	walk = func(n ExprNode) {
		switch e := n.(type) {
		case nil:
		case *Ident:
			if e.Qualifier != "" && strings.EqualFold(e.Qualifier, tb) {
				found = true
				return
			}
			if e.Qualifier == "" {
				_, inT := ts.Index(e.Name)
				_, inS := ss.Index(e.Name)
				if inT && !inS {
					found = true
				}
			}
		case *BinaryExpr:
			walk(e.L)
			walk(e.R)
		case *UnaryExpr:
			walk(e.X)
		case *IsNullNode:
			walk(e.X)
		case *InNode:
			walk(e.X)
			for _, el := range e.List {
				walk(el)
			}
		case *CaseNode:
			walk(e.Operand)
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(e.Else)
		case *FuncExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *AllCompare:
			walk(e.Left)
		}
	}
	walk(n)
	return found
}

func fieldNames(s *stream.Schema) []string {
	names := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		names[i] = s.Field(i).Name
	}
	return names
}

func hintSchema(names []string) *stream.Schema {
	fields := make([]stream.Field, len(names))
	for i, n := range names {
		fields[i] = stream.Field{Name: n, Kind: stream.KindNull}
	}
	return stream.MustSchema(fields...)
}
