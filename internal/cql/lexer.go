// Package cql implements the declarative query dialect ESP stages are
// programmed in: a subset of CQL (Arasu et al., "The CQL continuous query
// language") sufficient for every query in the paper — windowed SELECT
// with `[Range By 'd']` / `[Range By 'NOW']`, WHERE, GROUP BY, HAVING
// (including the correlated `>= ALL` form of Query 3), subqueries in FROM,
// and static-relation joins.
//
// The package has three layers: a lexer (this file), a recursive-descent
// parser producing an AST (parser.go, ast.go), and a planner compiling the
// AST onto internal/stream operator graphs (plan.go).
package cql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString // '...'
	TokSymbol // punctuation and operators
	TokKeyword
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokSymbol:
		return "symbol"
	case TokKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// keywords are recognised case-insensitively and stored upper-case.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"DISTINCT": true, "ALL": true, "RANGE": true, "NOW": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "UNION": true, "IN": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"BETWEEN": true, "SLIDE": true,
}

// Token is one lexical token with its position (byte offset) for errors.
type Token struct {
	Kind TokKind
	Text string // keywords upper-cased; idents as written; strings unquoted
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Lexer tokenizes CQL text.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Lex tokenizes the whole input.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	}
	// Multi-char symbols first.
	for _, sym := range []string{"<=", ">=", "<>", "!="} {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			l.pos += len(sym)
			if sym == "!=" {
				sym = "<>"
			}
			return Token{Kind: TokSymbol, Text: sym, Pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '<', '>', '=', '[', ']', '.':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("cql: unexpected character %q at offset %d", c, l.pos)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("cql: unterminated string starting at offset %d", start)
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			// A trailing dot followed by a non-digit belongs to the next
			// token (qualified name), but numbers like "1.5" consume it.
			if l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) {
				seenDot = true
				l.pos += 2
				continue
			}
		}
		break
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexIdent() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
