package cql

import (
	"testing"
	"time"
)

func BenchmarkParseQuery1(b *testing.B) {
	src := paperQueries["q1_shelf_monitor"]
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseQuery3AllSubquery(b *testing.B) {
	src := paperQueries["q3_arbitrate"]
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanQuery1(b *testing.B) {
	cfg := PlanConfig{Slide: time.Second}
	for i := 0; i < b.N; i++ {
		if _, err := PlanString(paperQueries["q1_shelf_monitor"], testCatalog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanQuery5SelfJoin(b *testing.B) {
	cfg := PlanConfig{Slide: 5 * time.Minute}
	for i := 0; i < b.N; i++ {
		if _, err := PlanString(paperQueries["q5_merge_outlier"], testCatalog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanQuery6Combine(b *testing.B) {
	cfg := PlanConfig{Slide: time.Second}
	for i := 0; i < b.N; i++ {
		if _, err := PlanString(paperQueries["q6_person_detector"], testCatalog, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
