package cql

import (
	"fmt"
	"sort"
	"strings"

	"esp/internal/stream"
)

// This file implements the plan optimizer: a catalog of peephole rewrites
// over the linear operator lists the planner emits, applied before the
// graph is opened. Every rewrite must preserve the query's observable
// output exactly (the oracle's optimized-vs-unoptimized differential
// enforces this byte-for-byte); rewrites that change how often or on
// which rows an expression is evaluated therefore only fire on pure
// expressions (stream.ExprPure), so an optimized plan can never surface
// an evaluation error the unoptimized plan would not also have hit.
//
// The catalog, in application order:
//
//	swap       [Project, Filter]    -> [Filter', Project]   (predicate pushdown)
//	push       [WindowAgg, Filter]  -> [Filter'', WindowAgg] (group-key pushdown)
//	collapse   [Project, Project]   -> [Project']            (projection merge)
//	merge      [Filter, Filter]     -> [Filter AND]          (total preds only)
//	prune      Project columns unused downstream             (projection pruning)
//	elide      identity Project over WindowAgg/ArgMax
//	fuseAgg    [Filter, WindowAgg]  -> WindowAgg{Where}      (filter fusion)
//	fuse       [Filter, Project]    -> FusedFilterProject
//
// The first four run to a fixpoint (each either shrinks the list or moves
// a filter strictly closer to the source, so the loop terminates); the
// fusions run last so pushdown has already moved filters next to their
// fusion partners.

// optimize rewrites one operator list in place and logs what fired. site
// names the list for the rewrite log ("leg <stream>" or "post").
func (p *planner) optimize(site string, ops []stream.Operator) []stream.Operator {
	if p.cfg.NoOptimize {
		return ops
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(ops); i++ {
			if desc, ok := swapProjectFilter(ops, i); ok {
				p.logRewrite(site, desc)
				changed = true
				break
			}
			if desc, ok := pushFilterBelowAgg(ops, i); ok {
				p.logRewrite(site, desc)
				changed = true
				break
			}
			if out, desc, ok := collapseProjects(ops, i); ok {
				ops = out
				p.logRewrite(site, desc)
				changed = true
				break
			}
			if out, desc, ok := mergeFilters(ops, i); ok {
				ops = out
				p.logRewrite(site, desc)
				changed = true
				break
			}
		}
	}
	for i := 0; i+1 < len(ops); i++ {
		if desc, ok := pruneProject(ops, i); ok {
			p.logRewrite(site, desc)
		}
	}
	if out, desc, ok := elideIdentityProject(ops); ok {
		ops = out
		p.logRewrite(site, desc)
	}
	for i := 0; i+1 < len(ops); i++ {
		if out, desc, ok := fuseFilterIntoAgg(ops, i); ok {
			ops = out
			p.logRewrite(site, desc)
		}
	}
	for i := 0; i+1 < len(ops); i++ {
		if out, desc, ok := fuseFilterProject(ops, i); ok {
			ops = out
			p.logRewrite(site, desc)
		}
	}
	return ops
}

func (p *planner) logRewrite(site, desc string) {
	p.rewrites = append(p.rewrites, site+": "+desc)
}

// swapProjectFilter rewrites [Project, Filter] into [Filter', Project],
// substituting the projection's expressions into the predicate so the
// filter reads the projection's input. Rows are dropped before the
// projection computes anything for them.
func swapProjectFilter(ops []stream.Operator, i int) (string, bool) {
	proj, ok := ops[i].(*stream.Project)
	if !ok {
		return "", false
	}
	f, ok := ops[i+1].(*stream.Filter)
	if !ok {
		return "", false
	}
	if !stream.ExprPure(f.Pred) {
		return "", false
	}
	byName := make(map[string]stream.Expr, len(proj.Exprs))
	for _, ne := range proj.Exprs {
		byName[ne.Name] = ne.Expr
	}
	refs := make(map[string]struct{})
	if !stream.ExprColumns(f.Pred, refs) {
		return "", false
	}
	for name := range refs {
		e, ok := byName[name]
		if !ok || !stream.ExprPure(e) {
			return "", false
		}
	}
	pred, ok := stream.SubstituteCols(f.Pred, func(name string) (stream.Expr, bool) {
		e, ok := byName[name]
		return e, ok
	})
	if !ok {
		return "", false
	}
	ops[i] = stream.NewFilter(pred)
	ops[i+1] = proj
	return fmt.Sprintf("push filter %s below projection", pred), true
}

// pushFilterBelowAgg rewrites [WindowAgg, Filter] into [Filter”,
// WindowAgg] when the predicate references only the aggregation's group
// output columns: a group excluded after aggregation can be excluded
// before it, shrinking every pane's state.
func pushFilterBelowAgg(ops []stream.Operator, i int) (string, bool) {
	w, ok := ops[i].(*stream.WindowAgg)
	if !ok {
		return "", false
	}
	f, ok := ops[i+1].(*stream.Filter)
	if !ok {
		return "", false
	}
	if len(w.GroupBy) == 0 || w.Having != nil || w.Where != nil || !stream.ExprPure(f.Pred) {
		return "", false
	}
	byName := make(map[string]stream.Expr, len(w.GroupBy))
	for _, ne := range w.GroupBy {
		if !stream.ExprPure(ne.Expr) {
			return "", false
		}
		byName[ne.Name] = ne.Expr
	}
	for _, a := range w.Aggs {
		// A name collision between a group column and an aggregate output
		// would make the substitution ambiguous.
		if _, clash := byName[a.Name]; clash {
			return "", false
		}
	}
	refs := make(map[string]struct{})
	if !stream.ExprColumns(f.Pred, refs) {
		return "", false
	}
	for name := range refs {
		if _, ok := byName[name]; !ok {
			return "", false
		}
	}
	pred, ok := stream.SubstituteCols(f.Pred, func(name string) (stream.Expr, bool) {
		e, ok := byName[name]
		return e, ok
	})
	if !ok {
		return "", false
	}
	ops[i] = stream.NewFilter(pred)
	ops[i+1] = w
	return fmt.Sprintf("push group filter %s below aggregation", pred), true
}

// collapseProjects merges [Project, Project] into one projection by
// substituting the inner expressions into the outer ones.
func collapseProjects(ops []stream.Operator, i int) ([]stream.Operator, string, bool) {
	inner, ok := ops[i].(*stream.Project)
	if !ok {
		return nil, "", false
	}
	outer, ok := ops[i+1].(*stream.Project)
	if !ok {
		return nil, "", false
	}
	byName := make(map[string]stream.Expr, len(inner.Exprs))
	for _, ne := range inner.Exprs {
		if !stream.ExprPure(ne.Expr) {
			return nil, "", false
		}
		byName[ne.Name] = ne.Expr
	}
	merged := make([]stream.NamedExpr, len(outer.Exprs))
	for j, ne := range outer.Exprs {
		e, ok := stream.SubstituteCols(ne.Expr, func(name string) (stream.Expr, bool) {
			x, ok := byName[name]
			return x, ok
		})
		if !ok {
			return nil, "", false
		}
		merged[j] = stream.NamedExpr{Name: ne.Name, Expr: e}
	}
	out := append(ops[:i], ops[i+1:]...)
	out[i] = stream.NewProject(merged...)
	return out, "collapse adjacent projections", true
}

// mergeFilters combines [Filter, Filter] into one conjunction. Because
// AND evaluates its right side even when the left is NULL, the merge only
// fires when neither predicate can error (stream.ExprTotal), so the
// changed evaluation order is unobservable.
func mergeFilters(ops []stream.Operator, i int) ([]stream.Operator, string, bool) {
	f1, ok := ops[i].(*stream.Filter)
	if !ok {
		return nil, "", false
	}
	f2, ok := ops[i+1].(*stream.Filter)
	if !ok {
		return nil, "", false
	}
	if !stream.ExprTotal(f1.Pred) || !stream.ExprTotal(f2.Pred) {
		return nil, "", false
	}
	out := append(ops[:i], ops[i+1:]...)
	out[i] = stream.NewFilter(stream.NewBinary(stream.OpAnd, f1.Pred, f2.Pred))
	return out, "merge adjacent filters", true
}

// pruneProject narrows a non-final projection to the columns its
// downstream operators actually reference.
func pruneProject(ops []stream.Operator, i int) (string, bool) {
	proj, ok := ops[i].(*stream.Project)
	if !ok || i+1 >= len(ops) {
		return "", false
	}
	req, ok := requiredDownstream(ops[i+1:])
	if !ok {
		return "", false
	}
	var kept []stream.NamedExpr
	var dropped []string
	for _, ne := range proj.Exprs {
		if _, used := req[ne.Name]; used || !stream.ExprPure(ne.Expr) {
			kept = append(kept, ne)
		} else {
			dropped = append(dropped, ne.Name)
		}
	}
	if len(dropped) == 0 {
		return "", false
	}
	if len(kept) == 0 {
		// Keep one column so the projection still produces rows.
		kept = proj.Exprs[:1]
		dropped = dropped[1:]
		if len(dropped) == 0 {
			return "", false
		}
	}
	ops[i] = stream.NewProject(kept...)
	sort.Strings(dropped)
	return fmt.Sprintf("prune unused projection columns %v", dropped), true
}

// requiredDownstream walks the operators after a projection and collects
// every input column they reference, stopping at the first operator that
// re-derives its output (another projection or an aggregation). It
// reports false when the tail ends without such a terminator (the leg's
// full output is consumed externally) or contains an operator it cannot
// analyse — both mean "everything is required".
func requiredDownstream(ops []stream.Operator) (map[string]struct{}, bool) {
	req := make(map[string]struct{})
	for _, op := range ops {
		switch o := op.(type) {
		case *stream.Filter:
			if !stream.ExprColumns(o.Pred, req) {
				return nil, false
			}
		case *stream.Sample:
			// Passes rows through untouched.
		case *stream.Distinct:
			if len(o.On) == 0 {
				return nil, false // keys on the whole tuple
			}
			for _, ne := range o.On {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
		case *stream.Project:
			for _, ne := range o.Exprs {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
			return req, true
		case *stream.FusedFilterProject:
			if !stream.ExprColumns(o.Pred, req) {
				return nil, false
			}
			for _, ne := range o.Exprs {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
			return req, true
		case *stream.WindowAgg:
			if o.Where != nil && !stream.ExprColumns(o.Where, req) {
				return nil, false
			}
			for _, ne := range o.GroupBy {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
			for _, a := range o.Aggs {
				if a.Arg != nil && !stream.ExprColumns(a.Arg, req) {
					return nil, false
				}
			}
			// Having binds against the aggregation's output, not ours.
			return req, true
		case *stream.ArgMax:
			for _, ne := range o.PartitionBy {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
			for _, ne := range o.ChooseBy {
				if !stream.ExprColumns(ne.Expr, req) {
					return nil, false
				}
			}
			if !stream.ExprColumns(o.Score.Expr, req) {
				return nil, false
			}
			return req, true
		default:
			return nil, false
		}
	}
	return nil, false
}

// elideIdentityProject removes a trailing projection that reproduces a
// WindowAgg's or ArgMax's output verbatim (same columns, names, order) —
// the common `SELECT g, agg(x) AS a ... GROUP BY g` tail.
func elideIdentityProject(ops []stream.Operator) ([]stream.Operator, string, bool) {
	n := len(ops)
	if n < 2 {
		return nil, "", false
	}
	proj, ok := ops[n-1].(*stream.Project)
	if !ok {
		return nil, "", false
	}
	switch ops[n-2].(type) {
	case *stream.WindowAgg, *stream.ArgMax:
	default:
		return nil, "", false
	}
	upNames, err := outputNames(ops[n-2])
	if err != nil || len(upNames) != len(proj.Exprs) {
		return nil, "", false
	}
	for i, ne := range proj.Exprs {
		col, ok := stream.ColName(ne.Expr)
		if !ok || col != upNames[i] || ne.Name != upNames[i] {
			return nil, "", false
		}
	}
	return ops[:n-1], "elide identity projection", true
}

// fuseFilterIntoAgg folds [Filter, WindowAgg] into the aggregation's
// Where clause: the predicate runs per input row before any window state
// is touched, exactly as the standalone filter did.
func fuseFilterIntoAgg(ops []stream.Operator, i int) ([]stream.Operator, string, bool) {
	f, ok := ops[i].(*stream.Filter)
	if !ok {
		return nil, "", false
	}
	w, ok := ops[i+1].(*stream.WindowAgg)
	if !ok || w.Where != nil {
		return nil, "", false
	}
	w.Where = f.Pred
	out := append(ops[:i], ops[i+1:]...)
	return out, fmt.Sprintf("fuse filter %s into aggregation", f.Pred), true
}

// fuseFilterProject folds [Filter, Project] into one FusedFilterProject
// operator: the predicate is evaluated first and the projection only for
// passing rows, exactly as the separate operators behaved.
func fuseFilterProject(ops []stream.Operator, i int) ([]stream.Operator, string, bool) {
	f, ok := ops[i].(*stream.Filter)
	if !ok {
		return nil, "", false
	}
	proj, ok := ops[i+1].(*stream.Project)
	if !ok {
		return nil, "", false
	}
	out := append(ops[:i], ops[i+1:]...)
	out[i] = &stream.FusedFilterProject{Pred: f.Pred, Exprs: proj.Exprs}
	return out, "fuse filter and projection", true
}

// ---------------------------------------------------------------------------
// Plan explanation

// LegExplain describes one input leg of a plan.
type LegExplain struct {
	// Input is the base stream the leg reads.
	Input string
	// Ops renders the leg's operators in execution order.
	Ops []string
}

// PlanExplain is a human-readable rendering of a planned query, including
// the optimizer rewrites that fired. Produced by Explain/ExplainString.
type PlanExplain struct {
	Legs []LegExplain
	// Post renders the post-combine chain of a multi-leg plan.
	Post []string
	// Rewrites lists the optimizer rewrites in application order, each
	// prefixed with the site ("leg <stream>" or "post") it fired at.
	Rewrites []string
}

// String renders the explanation, one operator per line.
func (pe *PlanExplain) String() string {
	var b strings.Builder
	for _, lg := range pe.Legs {
		fmt.Fprintf(&b, "leg %s:\n", lg.Input)
		if len(lg.Ops) == 0 {
			b.WriteString("  (pass-through)\n")
		}
		for _, op := range lg.Ops {
			fmt.Fprintf(&b, "  %s\n", op)
		}
	}
	if len(pe.Legs) > 1 || len(pe.Post) > 0 {
		b.WriteString("post:\n")
		if len(pe.Post) == 0 {
			b.WriteString("  (combine only)\n")
		}
		for _, op := range pe.Post {
			fmt.Fprintf(&b, "  %s\n", op)
		}
	}
	if len(pe.Rewrites) > 0 {
		b.WriteString("rewrites:\n")
		for _, r := range pe.Rewrites {
			fmt.Fprintf(&b, "  %s\n", r)
		}
	}
	return b.String()
}

// Explain plans stmt without opening the resulting graph and reports the
// physical plan plus the optimizer rewrites that fired. Set
// cfg.NoOptimize to see the naive plan.
func Explain(stmt *SelectStmt, cat Catalog, cfg PlanConfig) (*PlanExplain, error) {
	p := &planner{cat: cat, cfg: cfg, explain: &PlanExplain{}}
	if _, err := p.plan(stmt); err != nil {
		return nil, err
	}
	p.explain.Rewrites = p.rewrites
	return p.explain, nil
}

// ExplainString parses and explains src in one step.
func ExplainString(src string, cat Catalog, cfg PlanConfig) (*PlanExplain, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Explain(stmt, cat, cfg)
}

// noteLeg records a finished leg in the explanation under construction.
func (p *planner) noteLeg(lg *leg) {
	if p.explain == nil {
		return
	}
	p.explain.Legs = append(p.explain.Legs, LegExplain{Input: lg.input, Ops: describeOps(lg.ops)})
}

func describeOps(ops []stream.Operator) []string {
	out := make([]string, len(ops))
	for i, op := range ops {
		out[i] = describeOp(op)
	}
	return out
}

// describeOp renders one operator for EXPLAIN output.
func describeOp(op stream.Operator) string {
	switch o := op.(type) {
	case *stream.Filter:
		return fmt.Sprintf("Filter(%s)", o.Pred)
	case *stream.Project:
		return fmt.Sprintf("Project(%s)", describeNamed(o.Exprs))
	case *stream.FusedFilterProject:
		return fmt.Sprintf("FilterProject(%s -> %s)", o.Pred, describeNamed(o.Exprs))
	case *stream.WindowAgg:
		var b strings.Builder
		b.WriteString("WindowAgg[")
		if o.Range > 0 {
			fmt.Fprintf(&b, "range %s slide %s", o.Range, o.Slide)
		} else {
			fmt.Fprintf(&b, "now slide %s", o.Slide)
		}
		b.WriteString("](")
		var parts []string
		if o.Where != nil {
			parts = append(parts, fmt.Sprintf("where %s", o.Where))
		}
		if len(o.GroupBy) > 0 {
			parts = append(parts, "group by "+describeNamed(o.GroupBy))
		}
		aggs := make([]string, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = describeAgg(a)
		}
		parts = append(parts, strings.Join(aggs, ", "))
		if o.Having != nil {
			parts = append(parts, fmt.Sprintf("having %s", o.Having))
		}
		b.WriteString(strings.Join(parts, "; "))
		b.WriteString(")")
		return b.String()
	case *stream.ArgMax:
		return fmt.Sprintf("ArgMax(partition %s; choose %s; score %s)",
			describeNamed(o.PartitionBy), describeNamed(o.ChooseBy), o.Score.Name)
	case *stream.SelfJoin:
		aggs := make([]string, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = describeAgg(a)
		}
		return fmt.Sprintf("SelfJoin(group by %s; %s)", describeNamed(o.GroupBy), strings.Join(aggs, ", "))
	case *stream.JoinStatic:
		mode := "inner"
		if o.Mode == stream.JoinSemi {
			mode = "semi"
		}
		return fmt.Sprintf("JoinStatic(%s = %s, %s)", o.StreamCol, o.TableCol, mode)
	case *stream.Sample:
		if o.EveryN > 0 {
			return fmt.Sprintf("Sample(every %d)", o.EveryN)
		}
		return fmt.Sprintf("Sample(fraction %g)", o.Fraction)
	case *stream.Distinct:
		if len(o.On) == 0 {
			return "Distinct(*)"
		}
		return fmt.Sprintf("Distinct(%s)", describeNamed(o.On))
	default:
		return fmt.Sprintf("%T", op)
	}
}

func describeNamed(exprs []stream.NamedExpr) string {
	parts := make([]string, len(exprs))
	for i, ne := range exprs {
		if col, ok := stream.ColName(ne.Expr); ok && col == ne.Name {
			parts[i] = ne.Name
		} else {
			parts[i] = fmt.Sprintf("%s AS %s", ne.Expr, ne.Name)
		}
	}
	return strings.Join(parts, ", ")
}

func describeAgg(a stream.AggSpec) string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	if a.Distinct {
		arg = "distinct " + arg
	}
	if a.Func == stream.AggPercentile {
		return fmt.Sprintf("percentile(%s, %g) AS %s", arg, a.Param, a.Name)
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Name)
}
