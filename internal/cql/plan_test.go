package cql

import (
	"testing"
	"time"

	"esp/internal/stream"
)

var testCatalog = Catalog{
	"rfid_data": stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "shelf", Kind: stream.KindInt},
	),
	"smooth_input": stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
	),
	"arbitrate_input": stream.MustSchema(
		stream.Field{Name: "spatial_granule", Kind: stream.KindInt},
		stream.Field{Name: "tag_id", Kind: stream.KindString},
	),
	"point_input": stream.MustSchema(
		stream.Field{Name: "mote", Kind: stream.KindInt},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	),
	"merge_input": stream.MustSchema(
		stream.Field{Name: "spatial_granule", Kind: stream.KindInt},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
	),
	"sensors_input": stream.MustSchema(
		stream.Field{Name: "noise", Kind: stream.KindFloat},
	),
	"rfid_input": stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
	),
	"motion_input": stream.MustSchema(
		stream.Field{Name: "value", Kind: stream.KindString},
	),
}

func at(sec float64) time.Time {
	return time.Unix(0, int64(sec*float64(time.Second))).UTC()
}

type feed struct {
	input string
	t     stream.Tuple
}

// runPlan executes a graph over timestamped feeds, punctuating every epoch
// up to end, and returns all output tuples.
func runPlan(t *testing.T, g *stream.Graph, feeds []feed, epoch, end time.Duration) []stream.Tuple {
	t.Helper()
	var out []stream.Tuple
	i := 0
	for now := epoch; now <= end; now += epoch {
		bound := at(now.Seconds())
		for i < len(feeds) && !feeds[i].t.Ts.After(bound) {
			got, err := g.Push(feeds[i].input, feeds[i].t)
			if err != nil {
				t.Fatalf("push: %v", err)
			}
			out = append(out, got...)
			i++
		}
		got, err := g.Advance(bound)
		if err != nil {
			t.Fatalf("advance: %v", err)
		}
		out = append(out, got...)
	}
	return out
}

func TestPlanQuery4PointFilter(t *testing.T) {
	g, err := PlanString(paperQueries["q4_point_filter"], testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("point_input", stream.NewTuple(at(0.1), stream.Int(1), stream.Float(21.5)))
	if err != nil || len(out) != 1 {
		t.Fatalf("cool reading: %v, %v", out, err)
	}
	out, err = g.Push("point_input", stream.NewTuple(at(0.2), stream.Int(1), stream.Float(103)))
	if err != nil || len(out) != 0 {
		t.Fatalf("fail-dirty reading should be dropped: %v, %v", out, err)
	}
}

func TestPlanQuery1ShelfCount(t *testing.T) {
	g, err := PlanString(paperQueries["q1_shelf_monitor"], testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"rfid_data", stream.NewTuple(at(0.2), stream.String("A"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(0.4), stream.String("A"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(0.6), stream.String("B"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(0.8), stream.String("C"), stream.Int(1))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Values[0] != stream.Int(0) || out[0].Values[1] != stream.Int(2) {
		t.Errorf("shelf 0 = %v, want distinct count 2", out[0])
	}
	if out[1].Values[0] != stream.Int(1) || out[1].Values[1] != stream.Int(1) {
		t.Errorf("shelf 1 = %v", out[1])
	}
	if got := g.Schema().String(); got != "(shelf int, cnt int)" {
		t.Errorf("output schema = %s", got)
	}
}

func TestPlanQuery2SmoothSlides(t *testing.T) {
	g, err := PlanString(paperQueries["q2_smooth"], testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Tag read only at t=0.5; the 5s window keeps reporting it until the
	// window passes — interpolation for lost readings.
	feeds := []feed{{"smooth_input", stream.NewTuple(at(0.5), stream.String("A"))}}
	out := runPlan(t, g, feeds, time.Second, 8*time.Second)
	var boundaries []float64
	for _, o := range out {
		boundaries = append(boundaries, float64(o.Ts.UnixNano())/1e9)
	}
	// Emitted at t=1..5 (window (t-5, t] contains 0.5), absent after.
	if len(out) != 5 {
		t.Fatalf("smooth emissions at %v, want 5 boundaries", boundaries)
	}
	for _, o := range out {
		if o.Values[0] != stream.String("A") || o.Values[1] != stream.Int(1) {
			t.Errorf("row = %v", o)
		}
	}
}

func TestPlanQuery3Arbitrate(t *testing.T) {
	g, err := PlanString(paperQueries["q3_arbitrate"], testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	push := func(sec float64, granule int64, tag string) feed {
		return feed{"arbitrate_input", stream.NewTuple(at(sec), stream.Int(granule), stream.String(tag))}
	}
	// Tag X: 3 reads from shelf 0, 1 from shelf 1. Tag Y: 2 reads shelf 1.
	feeds := []feed{
		push(0.1, 0, "X"), push(0.3, 0, "X"), push(0.5, 0, "X"),
		push(0.2, 1, "X"),
		push(0.4, 1, "Y"), push(0.6, 1, "Y"),
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	got := map[string]int64{}
	for _, o := range out {
		got[o.Values[1].AsString()] = o.Values[0].AsInt()
	}
	if got["X"] != 0 || got["Y"] != 1 {
		t.Errorf("attribution = %v, want X->0 Y->1", got)
	}
	if gotS := g.Schema().String(); gotS != "(spatial_granule int, tag_id string)" {
		t.Errorf("schema = %s", gotS)
	}
}

func TestPlanQuery3TieBreak(t *testing.T) {
	// The weaker antenna (granule 1) wins ties — paper §4.3.1.
	cfg := PlanConfig{
		Slide: time.Second,
		TieBreak: func(a, b stream.Tuple) bool {
			return a.Values[0] == stream.Int(1)
		},
	}
	g, err := PlanString(paperQueries["q3_arbitrate"], testCatalog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"arbitrate_input", stream.NewTuple(at(0.1), stream.Int(0), stream.String("X"))},
		{"arbitrate_input", stream.NewTuple(at(0.2), stream.Int(1), stream.String("X"))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != stream.Int(1) {
		t.Errorf("tie went to %v, want weaker antenna 1", out)
	}
}

func TestPlanQuery5MergeOutlier(t *testing.T) {
	g, err := PlanString(paperQueries["q5_merge_outlier"], testCatalog, PlanConfig{Slide: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(sec float64, granule int64, temp float64) feed {
		return feed{"merge_input", stream.NewTuple(at(sec), stream.Int(granule), stream.Float(temp))}
	}
	// Two healthy motes (~20C) and one fail-dirty (100C) in granule 1.
	feeds := []feed{mk(10, 1, 20), mk(20, 1, 21), mk(30, 1, 100)}
	out := runPlan(t, g, feeds, 5*time.Minute, 5*time.Minute)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0].Values[0] != stream.Int(1) {
		t.Errorf("granule = %v", out[0].Values[0])
	}
	avg := out[0].Values[1].AsFloat()
	if avg < 20.4 || avg > 20.6 {
		t.Errorf("outlier-filtered avg = %v, want 20.5", avg)
	}
}

func TestPlanQuery6PersonDetector(t *testing.T) {
	g, err := PlanString(paperQueries["q6_person_detector"], testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1: noise high + RFID tag seen -> 2 votes -> person.
	// Epoch 2: only motion -> 1 vote -> no person.
	feeds := []feed{
		{"sensors_input", stream.NewTuple(at(0.2), stream.Float(800))},
		{"rfid_input", stream.NewTuple(at(0.4), stream.String("badge-1"))},
		{"motion_input", stream.NewTuple(at(1.5), stream.String("ON"))},
	}
	out := runPlan(t, g, feeds, time.Second, 2*time.Second)
	if len(out) != 1 {
		t.Fatalf("out = %v, want one detection", out)
	}
	if !out[0].Ts.Equal(at(1)) || out[0].Values[0] != stream.String("Person-in-room") {
		t.Errorf("detection = %v", out[0])
	}
}

func TestPlanQuery6QuietSensorNoVote(t *testing.T) {
	g, err := PlanString(paperQueries["q6_person_detector"], testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Noise below threshold and an OFF motion event: zero votes even
	// though tuples arrived.
	feeds := []feed{
		{"sensors_input", stream.NewTuple(at(0.2), stream.Float(400))},
		{"motion_input", stream.NewTuple(at(0.5), stream.String("OFF"))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 0 {
		t.Errorf("out = %v, want none", out)
	}
}

func TestPlanStaticTableSemiJoin(t *testing.T) {
	expected := stream.MustTable(
		stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
		[]stream.Tuple{
			stream.NewTuple(time.Time{}, stream.String("A")),
		},
	)
	cfg := PlanConfig{Tables: map[string]*stream.Table{"expected_tags": expected}}
	g, err := PlanString(
		"SELECT * FROM rfid_data, expected_tags WHERE tag_id = expected_tag",
		testCatalog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("rfid_data", stream.NewTuple(at(0.1), stream.String("A"), stream.Int(0)))
	if err != nil || len(out) != 1 {
		t.Fatalf("expected tag: %v, %v", out, err)
	}
	if len(out[0].Values) != 2 {
		t.Errorf("semi join widened the tuple: %v", out[0])
	}
	out, _ = g.Push("rfid_data", stream.NewTuple(at(0.2), stream.String("Z"), stream.Int(0)))
	if len(out) != 0 {
		t.Errorf("errant tag passed: %v", out)
	}
}

func TestPlanStaticTableInnerJoin(t *testing.T) {
	inventory := stream.MustTable(
		stream.MustSchema(
			stream.Field{Name: "inv_tag", Kind: stream.KindString},
			stream.Field{Name: "product", Kind: stream.KindString},
		),
		[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String("A"), stream.String("soap"))},
	)
	cfg := PlanConfig{Tables: map[string]*stream.Table{"inventory": inventory}}
	g, err := PlanString(
		"SELECT tag_id, product FROM rfid_data, inventory WHERE tag_id = inv_tag",
		testCatalog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("rfid_data", stream.NewTuple(at(0.1), stream.String("A"), stream.Int(0)))
	if err != nil || len(out) != 1 {
		t.Fatalf("join: %v, %v", out, err)
	}
	if out[0].Values[1] != stream.String("soap") {
		t.Errorf("joined = %v", out[0])
	}
}

func TestPlanSubqueryNesting(t *testing.T) {
	// Outer filter over an aggregating subquery.
	src := `SELECT tag_id FROM
	          (SELECT tag_id, count(*) AS n FROM smooth_input [Range By '2 sec'] GROUP BY tag_id) AS sm
	        WHERE n >= 2`
	g, err := PlanString(src, testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"smooth_input", stream.NewTuple(at(0.2), stream.String("A"))},
		{"smooth_input", stream.NewTuple(at(0.4), stream.String("A"))},
		{"smooth_input", stream.NewTuple(at(0.6), stream.String("B"))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != stream.String("A") {
		t.Errorf("out = %v, want only A", out)
	}
}

func TestPlanPostAggregateArithmetic(t *testing.T) {
	// Expressions over aggregates in the SELECT list.
	src := `SELECT spatial_granule, avg(temp) + stdev(temp) AS hi
	        FROM merge_input [Range By '1 sec'] GROUP BY spatial_granule`
	g, err := PlanString(src, testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"merge_input", stream.NewTuple(at(0.2), stream.Int(1), stream.Float(10))},
		{"merge_input", stream.NewTuple(at(0.4), stream.Int(1), stream.Float(20))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	hi := out[0].Values[1].AsFloat()
	if hi < 19.9 || hi > 20.1 { // avg 15 + stdev 5
		t.Errorf("hi = %v, want 20", hi)
	}
}

func TestPlanErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		cfg  PlanConfig
	}{
		{"unknown stream", "SELECT a FROM nope", PlanConfig{}},
		{"unknown column", "SELECT missing FROM rfid_data", PlanConfig{}},
		{"agg without window", "SELECT count(*) FROM rfid_data", PlanConfig{}},
		{"NOW without slide", "SELECT count(*) FROM rfid_data [Range By 'NOW']", PlanConfig{}},
		{"agg in where", "SELECT tag_id FROM rfid_data WHERE count(*) > 1", PlanConfig{}},
		{"having without group", "SELECT tag_id FROM rfid_data HAVING tag_id = 'x'", PlanConfig{}},
		{"all with non-agg left", `SELECT shelf FROM rfid_data [Range By 'NOW'] GROUP BY shelf
			HAVING shelf >= ALL(SELECT count(*) FROM rfid_data [Range By 'NOW'] GROUP BY shelf)`,
			PlanConfig{Slide: time.Second}},
		{"all subquery without group", `SELECT shelf FROM rfid_data [Range By 'NOW'] GROUP BY shelf
			HAVING count(*) >= ALL(SELECT count(*) FROM rfid_data [Range By 'NOW'])`,
			PlanConfig{Slide: time.Second}},
		{"all without partition", `SELECT shelf FROM rfid_data [Range By 'NOW'] GROUP BY shelf
			HAVING count(*) >= ALL(SELECT count(*) FROM rfid_data [Range By 'NOW'] GROUP BY shelf)`,
			PlanConfig{Slide: time.Second}},
		{"combine with repeated stream", `SELECT 1 AS one FROM
			(SELECT 1 AS a FROM rfid_input [Range By 'NOW']) AS x,
			(SELECT 1 AS b FROM rfid_input [Range By 'NOW']) AS y
			WHERE x.a = y.b`,
			PlanConfig{Slide: time.Second}},
		{"table join without equality", "SELECT * FROM rfid_data, expected_tags",
			PlanConfig{Tables: map[string]*stream.Table{"expected_tags": stream.MustTable(
				stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}), nil)}}},
	}
	for _, tc := range cases {
		if _, err := PlanString(tc.src, testCatalog, tc.cfg); err == nil {
			t.Errorf("%s: want plan error for %q", tc.name, tc.src)
		}
	}
}

func TestPlanHavingOnCount(t *testing.T) {
	src := `SELECT shelf FROM rfid_data [Range By '1 sec'] GROUP BY shelf HAVING count(*) >= 2`
	g, err := PlanString(src, testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"rfid_data", stream.NewTuple(at(0.1), stream.String("A"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(0.2), stream.String("B"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(0.3), stream.String("C"), stream.Int(1))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != stream.Int(0) {
		t.Errorf("out = %v, want only shelf 0", out)
	}
}

func TestPlanTumblingDefaultWithoutSlide(t *testing.T) {
	// With no cfg.Slide, ranged windows tumble.
	src := `SELECT count(*) AS n FROM rfid_data [Range By '2 sec']`
	g, err := PlanString(src, testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"rfid_data", stream.NewTuple(at(0.5), stream.String("A"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(1.5), stream.String("B"), stream.Int(0))},
	}
	out := runPlan(t, g, feeds, 2*time.Second, 4*time.Second)
	if len(out) != 1 || out[0].Values[0] != stream.Int(2) {
		t.Errorf("tumbling out = %v", out)
	}
}
