package cql

import (
	"strings"
	"testing"
	"time"

	"esp/internal/stream"
)

func explain(t *testing.T, src string, cfg PlanConfig) *PlanExplain {
	t.Helper()
	pe, err := ExplainString(src, testCatalog, cfg)
	if err != nil {
		t.Fatalf("ExplainString(%q): %v", src, err)
	}
	return pe
}

func wantRewrite(t *testing.T, pe *PlanExplain, substr string) {
	t.Helper()
	for _, r := range pe.Rewrites {
		if strings.Contains(r, substr) {
			return
		}
	}
	t.Fatalf("no rewrite containing %q; got %v\nplan:\n%s", substr, pe.Rewrites, pe)
}

// TestExplainNoOptimize checks the kill switch: no rewrites fire and the
// naive operator order is preserved.
func TestExplainNoOptimize(t *testing.T) {
	src := "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '30s'] GROUP BY tag_id"
	pe := explain(t, src, PlanConfig{NoOptimize: true})
	if len(pe.Rewrites) != 0 {
		t.Fatalf("NoOptimize plan has rewrites: %v", pe.Rewrites)
	}
	if len(pe.Legs) != 1 || len(pe.Legs[0].Ops) != 2 {
		t.Fatalf("naive plan should be [WindowAgg, Project], got %v", pe.Legs)
	}
	if !strings.HasPrefix(pe.Legs[0].Ops[0], "WindowAgg") || !strings.HasPrefix(pe.Legs[0].Ops[1], "Project") {
		t.Fatalf("unexpected naive ops: %v", pe.Legs[0].Ops)
	}
}

// TestExplainShelfTagCount covers the shelf deployment's Smooth stage
// (toolkit SmoothTagCount): the trailing identity projection over the
// aggregation is elided.
func TestExplainShelfTagCount(t *testing.T) {
	src := "SELECT tag_id, count(*) AS n FROM smooth_input [Range By '30s'] GROUP BY tag_id"
	pe := explain(t, src, PlanConfig{})
	wantRewrite(t, pe, "elide identity projection")
	if len(pe.Legs[0].Ops) != 1 || !strings.HasPrefix(pe.Legs[0].Ops[0], "WindowAgg") {
		t.Fatalf("optimized plan should be a lone WindowAgg, got %v", pe.Legs[0].Ops)
	}
}

// TestExplainRedwoodOutlier covers the redwood deployment's Merge stage
// (toolkit MergeOutlierAvg, the paper's Query 5): the residual ±σ filter
// between the self-join and the outer aggregation fuses into the
// aggregation's WHERE, and the identity projection is elided.
func TestExplainRedwoodOutlier(t *testing.T) {
	src := `
		SELECT s.spatial_granule AS spatial_granule, avg(s.temp) AS temp
		FROM merge_input s [Range By '30s'],
		     (SELECT spatial_granule, avg(temp) AS a, stdev(temp) AS sd
		      FROM merge_input [Range By '30s'] GROUP BY spatial_granule) AS m
		WHERE m.spatial_granule = s.spatial_granule
		  AND s.temp <= m.a + 2 * m.sd + 0.000001
		  AND s.temp >= m.a - 2 * m.sd - 0.000001
		GROUP BY s.spatial_granule`
	pe := explain(t, src, PlanConfig{Slide: 5 * time.Second})
	wantRewrite(t, pe, "elide identity projection")
	wantRewrite(t, pe, "fuse filter")
	ops := pe.Legs[0].Ops
	if len(ops) != 2 || !strings.HasPrefix(ops[0], "SelfJoin") || !strings.HasPrefix(ops[1], "WindowAgg") {
		t.Fatalf("optimized plan should be [SelfJoin, WindowAgg], got %v", ops)
	}
	if !strings.Contains(ops[1], "where") {
		t.Fatalf("residual filter not fused into aggregation: %v", ops)
	}
}

// TestExplainHomePersonDetector covers the digital-home deployment's
// virtualized Query 6: the sensor and motion legs and the post-combine
// chain each fuse their filter+projection pair.
func TestExplainHomePersonDetector(t *testing.T) {
	src := `
		SELECT 'Person-in-room' AS event
		FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 0.4) AS sensor_count,
		     (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS rfid_count,
		     (SELECT 1 AS cnt FROM motion_input [Range By 'NOW'] WHERE value = 'ON') AS motion_count
		WHERE sensor_count.cnt + rfid_count.cnt + motion_count.cnt >= 2`
	pe := explain(t, src, PlanConfig{Slide: time.Second})
	fusions := 0
	for _, r := range pe.Rewrites {
		if strings.Contains(r, "fuse filter and projection") {
			fusions++
		}
	}
	if fusions != 3 {
		t.Fatalf("want 3 filter+projection fusions (sensor leg, motion leg, post), got %d: %v", fusions, pe.Rewrites)
	}
	if len(pe.Post) != 1 || !strings.HasPrefix(pe.Post[0], "FilterProject") {
		t.Fatalf("post chain should be one FilterProject, got %v", pe.Post)
	}
	for _, lg := range pe.Legs {
		switch lg.Input {
		case "sensors_input", "motion_input":
			if len(lg.Ops) != 1 || !strings.HasPrefix(lg.Ops[0], "FilterProject") {
				t.Fatalf("leg %s should be one FilterProject, got %v", lg.Input, lg.Ops)
			}
		}
	}
}

// TestExplainPushdownThroughProjection covers predicate pushdown below a
// projection (the filter is substituted with the projected expression)
// plus projection collapse.
func TestExplainPushdownThroughProjection(t *testing.T) {
	src := "SELECT t2 FROM (SELECT temp * 2 AS t2 FROM point_input) AS q WHERE t2 > 4"
	pe := explain(t, src, PlanConfig{})
	wantRewrite(t, pe, "push filter ((temp * 2) > 4) below projection")
	wantRewrite(t, pe, "collapse adjacent projections")
	ops := pe.Legs[0].Ops
	if len(ops) != 1 || !strings.HasPrefix(ops[0], "FilterProject") {
		t.Fatalf("optimized plan should be one FilterProject, got %v", ops)
	}
}

// TestExplainGroupFilterPushdown covers pushing a group-key filter below
// the aggregation: the whole cascade ends in a single WindowAgg whose
// WHERE prunes foreign groups before they build any window state.
func TestExplainGroupFilterPushdown(t *testing.T) {
	src := `SELECT tag_id, n
		FROM (SELECT tag_id, count(*) AS n FROM smooth_input [Range By '30s'] GROUP BY tag_id) AS q
		WHERE tag_id = 'a'`
	pe := explain(t, src, PlanConfig{})
	wantRewrite(t, pe, "push group filter (tag_id = 'a') below aggregation")
	ops := pe.Legs[0].Ops
	if len(ops) != 1 || !strings.HasPrefix(ops[0], "WindowAgg") || !strings.Contains(ops[0], "where (tag_id = 'a')") {
		t.Fatalf("optimized plan should be a lone WindowAgg with a where clause, got %v", ops)
	}
}

// TestExplainProjectionPruning covers narrowing an inner projection to
// the columns the downstream aggregation references.
func TestExplainProjectionPruning(t *testing.T) {
	src := "SELECT avg(temp) AS m FROM (SELECT temp, mote, temp * 2 AS t2 FROM point_input) AS q [Range By '30s']"
	pe := explain(t, src, PlanConfig{})
	wantRewrite(t, pe, "prune unused projection columns [mote t2]")
	ops := pe.Legs[0].Ops
	if len(ops) != 2 || ops[0] != "Project(temp)" {
		t.Fatalf("inner projection should be pruned to (temp), got %v", ops)
	}
}

// TestOptimizedPlanEquivalence runs a representative query both ways over
// the same input and demands identical output — the in-package version of
// the oracle's optimized-vs-unoptimized differential.
func TestOptimizedPlanEquivalence(t *testing.T) {
	src := `SELECT tag_id, n
		FROM (SELECT tag_id, count(*) AS n FROM smooth_input [Range By '30s'] GROUP BY tag_id) AS q
		WHERE tag_id = 'a'`
	feeds := []feed{
		{"smooth_input", stream.NewTuple(at(1), stream.String("a"))},
		{"smooth_input", stream.NewTuple(at(2), stream.String("b"))},
		{"smooth_input", stream.NewTuple(at(12), stream.String("a"))},
		{"smooth_input", stream.NewTuple(at(40), stream.String("a"))},
		{"smooth_input", stream.NewTuple(at(55), stream.String("b"))},
	}
	run := func(noOpt bool) []stream.Tuple {
		g, err := PlanString(src, testCatalog, PlanConfig{Slide: 10 * time.Second, NoOptimize: noOpt})
		if err != nil {
			t.Fatalf("plan (noOpt=%v): %v", noOpt, err)
		}
		return runPlan(t, g, feeds, 10*time.Second, 60*time.Second)
	}
	opt, naive := run(false), run(true)
	if len(opt) != len(naive) {
		t.Fatalf("optimized %d tuples, naive %d", len(opt), len(naive))
	}
	for i := range opt {
		if !opt[i].Ts.Equal(naive[i].Ts) || stream.Tuple.String(opt[i]) != stream.Tuple.String(naive[i]) {
			t.Fatalf("tuple %d diverges: optimized %v, naive %v", i, opt[i], naive[i])
		}
	}
}
