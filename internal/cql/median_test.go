package cql

import (
	"testing"
	"time"

	"esp/internal/stream"
)

func TestPlanMedianQuery(t *testing.T) {
	g, err := PlanString(
		`SELECT spatial_granule, median(temp) AS m FROM merge_input [Range By '1 sec'] GROUP BY spatial_granule`,
		testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	feeds := []feed{
		{"merge_input", stream.NewTuple(at(0.1), stream.Int(1), stream.Float(21))},
		{"merge_input", stream.NewTuple(at(0.2), stream.Int(1), stream.Float(22))},
		{"merge_input", stream.NewTuple(at(0.3), stream.Int(1), stream.Float(100))},
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[1] != stream.Float(22) {
		t.Errorf("median = %v, want 22", out)
	}
}

func TestPlanPercentileQuery(t *testing.T) {
	g, err := PlanString(
		`SELECT percentile(temp, 0.9) AS p FROM merge_input [Range By '1 sec']`,
		testCatalog, PlanConfig{Slide: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var feeds []feed
	for i := 1; i <= 10; i++ {
		feeds = append(feeds, feed{"merge_input",
			stream.NewTuple(at(0.01*float64(i)), stream.Int(1), stream.Float(float64(i)))})
	}
	out := runPlan(t, g, feeds, time.Second, time.Second)
	if len(out) != 1 || out[0].Values[0] != stream.Float(9) {
		t.Errorf("p90 = %v, want 9", out)
	}
}

func TestPlanPercentileErrors(t *testing.T) {
	bad := []string{
		`SELECT percentile(temp) AS p FROM merge_input [Range By '1 sec']`,       // missing quantile
		`SELECT percentile(temp, 1.5) AS p FROM merge_input [Range By '1 sec']`,  // out of range
		`SELECT percentile(temp, mote) AS p FROM merge_input [Range By '1 sec']`, // non-literal
		`SELECT median(temp, 0.5) AS m FROM merge_input [Range By '1 sec']`,      // median takes one arg
	}
	for _, src := range bad {
		if _, err := PlanString(src, testCatalog, PlanConfig{Slide: time.Second}); err == nil {
			t.Errorf("PlanString(%q): want error", src)
		}
	}
}
