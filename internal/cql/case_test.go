package cql

import (
	"testing"

	"esp/internal/stream"
)

func TestParseCase(t *testing.T) {
	stmt := MustParse(`SELECT CASE WHEN temp > 50 THEN 'hot' WHEN temp < 0 THEN 'cold' ELSE 'ok' END AS label
		FROM point_input`)
	c, ok := stmt.Items[0].Expr.(*CaseNode)
	if !ok {
		t.Fatalf("item = %T", stmt.Items[0].Expr)
	}
	if c.Operand != nil || len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case = %+v", c)
	}
	// Round-trip.
	printed := stmt.String()
	if _, err := Parse(printed); err != nil {
		t.Errorf("reparse %q: %v", printed, err)
	}
}

func TestParseOperandCase(t *testing.T) {
	stmt := MustParse(`SELECT CASE value WHEN 'ON' THEN 1 ELSE 0 END AS v FROM motion_input`)
	c := stmt.Items[0].Expr.(*CaseNode)
	if c.Operand == nil || len(c.Whens) != 1 {
		t.Errorf("case = %+v", c)
	}
}

func TestParseCaseErrors(t *testing.T) {
	bad := []string{
		"SELECT CASE END FROM s",           // no whens
		"SELECT CASE WHEN a THEN b FROM s", // missing END
		"SELECT CASE WHEN a THEN FROM s",   // missing then expr
		"SELECT CASE WHEN a b END FROM s",  // missing THEN
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestPlanCaseTransform(t *testing.T) {
	// A Point-stage status decode: the paper's tuple-level "conversion".
	g, err := PlanString(`SELECT CASE WHEN temp < 50 THEN temp ELSE NULL END AS temp_clean
		FROM point_input`, testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("point_input", stream.NewTuple(at(0.1), stream.Int(1), stream.Float(21)))
	if err != nil || len(out) != 1 || out[0].Values[0] != stream.Float(21) {
		t.Fatalf("cool reading: %v, %v", out, err)
	}
	out, _ = g.Push("point_input", stream.NewTuple(at(0.2), stream.Int(1), stream.Float(103)))
	if len(out) != 1 || !out[0].Values[0].IsNull() {
		t.Fatalf("hot reading should map to NULL: %v", out)
	}
}

func TestParseBetween(t *testing.T) {
	stmt := MustParse("SELECT temp FROM point_input WHERE temp BETWEEN 0 AND 50")
	// Desugared to (temp >= 0 AND temp <= 50).
	b, ok := stmt.Where.(*BinaryExpr)
	if !ok || b.Op != "AND" {
		t.Fatalf("where = %v", stmt.Where)
	}
	if b.L.(*BinaryExpr).Op != ">=" || b.R.(*BinaryExpr).Op != "<=" {
		t.Errorf("desugar = %v", stmt.Where)
	}
	neg := MustParse("SELECT temp FROM point_input WHERE temp NOT BETWEEN 0 AND 50")
	if _, ok := neg.Where.(*UnaryExpr); !ok {
		t.Errorf("NOT BETWEEN = %v", neg.Where)
	}
}

func TestPlanBetweenFilter(t *testing.T) {
	g, err := PlanString("SELECT temp FROM point_input WHERE temp BETWEEN 0 AND 50",
		testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := g.Push("point_input", stream.NewTuple(at(0.1), stream.Int(1), stream.Float(21)))
	drop, _ := g.Push("point_input", stream.NewTuple(at(0.2), stream.Int(1), stream.Float(103)))
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("between: keep=%v drop=%v", keep, drop)
	}
}

func TestPlanScalarFunctionsInQuery(t *testing.T) {
	g, err := PlanString(
		"SELECT clamp(temp, 0, 100) AS t, round(temp) AS r FROM point_input",
		testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := g.Push("point_input", stream.NewTuple(at(0.1), stream.Int(1), stream.Float(120.4)))
	if err != nil || len(out) != 1 {
		t.Fatalf("out = %v, %v", out, err)
	}
	if out[0].Values[0] != stream.Float(100) || out[0].Values[1] != stream.Float(120) {
		t.Errorf("values = %v", out[0].Values)
	}
}
