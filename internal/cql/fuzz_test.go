package cql

import (
	"testing"
	"time"

	"esp/internal/stream"
)

// Fuzz seed queries: the toolkit and paper queries, plus shapes that
// exercise every clause the grammar knows.
var fuzzSeeds = []string{
	"SELECT * FROM point_input WHERE temp < 50",
	"SELECT tag_id, count(*) AS n FROM smooth_input [Range By '5 sec'] GROUP BY tag_id",
	"SELECT avg(temp) AS temp FROM merge_input [Range By '2000 ms']",
	"SELECT median(temp) AS temp FROM merge_input [Range By 'NOW']",
	"SELECT percentile(temp, 0.9) AS p FROM s [Range By '1 sec'] GROUP BY g HAVING count(*) >= 2",
	"SELECT count(distinct tag_id) AS n FROM s [Range By 'NOW'] HAVING n >= 1",
	`SELECT spatial_granule, tag_id FROM arbitrate_input ai1 [Range By 'NOW']
	 GROUP BY spatial_granule, tag_id
	 HAVING sum(n) >= ALL(SELECT sum(n) FROM arbitrate_input ai2 [Range By 'NOW']
	                      WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)`,
	`SELECT 'Person-in-room' AS event
	 FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 40) AS a,
	      (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS b
	 WHERE a.cnt + b.cnt >= 2`,
	"SELECT s.temp AS t FROM s, tbl WHERE s.id = tbl.id AND NOT (s.temp >= 1.5e2 OR s.ok = FALSE)",
	"SELECT -temp AS neg, 'x' AS lit FROM s [Range By '1 sec']",
	"",
	"SELECT",
	"SELECT * FROM s [Range By '",
	"SELECT * FROM s WHERE a = 'unterminated",
	"SELECT * FROM s -- comment\nWHERE a = 1",
}

// FuzzLexer feeds arbitrary text to the lexer: it must never panic, must
// terminate within one token per input byte (plus EOF), and must report
// strictly increasing token positions — the invariant that guarantees
// parser error messages point at real offsets and lexing always makes
// progress.
func FuzzLexer(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		lx := NewLexer(src)
		prev := -1
		for i := 0; i <= len(src)+1; i++ {
			tok, err := lx.Next()
			if err != nil {
				return
			}
			if tok.Pos <= prev {
				t.Fatalf("token %v at pos %d after pos %d: positions must strictly increase", tok, tok.Pos, prev)
			}
			if tok.Pos > len(src) {
				t.Fatalf("token %v at pos %d beyond input length %d", tok, tok.Pos, len(src))
			}
			prev = tok.Pos
			if tok.Kind == TokEOF {
				return
			}
		}
		t.Fatalf("lexer emitted more than %d tokens for a %d-byte input", len(src)+2, len(src))
	})
}

// fuzzCatalog resolves the base stream names the seed queries use, so
// syntactically valid fuzz inputs reach the planner as well.
var fuzzCatalog = func() Catalog {
	sch := stream.MustSchema(
		stream.Field{Name: "receptor_id", Kind: stream.KindString},
		stream.Field{Name: "spatial_granule", Kind: stream.KindString},
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "ok", Kind: stream.KindBool},
		stream.Field{Name: "id", Kind: stream.KindString},
		stream.Field{Name: "g", Kind: stream.KindString},
		stream.Field{Name: "temp", Kind: stream.KindFloat},
		stream.Field{Name: "noise", Kind: stream.KindFloat},
		stream.Field{Name: "n", Kind: stream.KindInt},
	)
	cat := Catalog{}
	for _, name := range []string{"s", "point_input", "smooth_input", "merge_input",
		"arbitrate_input", "sensors_input", "rfid_input", "motion_input"} {
		cat[name] = sch
	}
	return cat
}()

// FuzzParser feeds arbitrary text to the parser and, when it parses, to
// the planner: neither may panic or hang; errors are the expected outcome
// for garbage.
func FuzzParser(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatal("Parse returned nil statement without error")
		}
		// Planning may fail (unknown streams, type errors) but not panic.
		_, _ = Plan(stmt, fuzzCatalog, PlanConfig{Slide: time.Second})
	})
}
