package cql

import (
	"testing"
	"time"

	"esp/internal/stream"
)

func TestParseSlideBy(t *testing.T) {
	stmt := MustParse("SELECT count(*) AS n FROM rfid_data [Range By '10 sec' Slide By '2 sec']")
	w := stmt.From[0].Window
	if w == nil || w.Range != 10*time.Second || w.Slide != 2*time.Second {
		t.Fatalf("window = %+v", w)
	}
	// Round-trip.
	printed := stmt.String()
	again := MustParse(printed)
	if again.From[0].Window.Slide != 2*time.Second {
		t.Errorf("reparse lost Slide: %q", printed)
	}
}

func TestParseSlideByErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM s [Range By 'NOW' Slide By '1 sec']", // NOW + slide
		"SELECT a FROM s [Range By '5 sec' Slide By NOW]",   // unquoted
		"SELECT a FROM s [Range By '5 sec' Slide '1 sec']",  // missing BY
		"SELECT a FROM s [Range By '5 sec' Slide By '0 sec']",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestPlanSlideByOverridesEpoch(t *testing.T) {
	// Epoch is 1s but the query slides every 2s: emissions only at even
	// boundaries.
	g, err := PlanString(
		"SELECT count(*) AS n FROM rfid_data [Range By '4 sec' Slide By '2 sec']",
		testCatalog, cfgWithSlide(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	var boundaries []float64
	feeds := []feed{
		{"rfid_data", stream.NewTuple(at(0.5), stream.String("A"), stream.Int(0))},
		{"rfid_data", stream.NewTuple(at(2.5), stream.String("B"), stream.Int(0))},
	}
	out := runPlan(t, g, feeds, time.Second, 6*time.Second)
	for _, o := range out {
		boundaries = append(boundaries, float64(o.Ts.UnixNano())/1e9)
	}
	for _, b := range boundaries {
		if int64(b)%2 != 1 {
			// First punctuation at t=1 anchors the slide grid at odd
			// seconds: 1, 3, 5.
			t.Errorf("emission at %v, want odd-second boundaries only (got %v)", b, boundaries)
		}
	}
	if len(out) < 2 {
		t.Fatalf("out = %v", out)
	}
}

func cfgWithSlide(d time.Duration) PlanConfig { return PlanConfig{Slide: d} }
