package cql

import (
	"fmt"
	"strings"
	"time"
)

// ExprNode is a parsed (unbound) expression.
type ExprNode interface {
	String() string
}

// Ident is a possibly qualified column reference (alias.name or name).
type Ident struct {
	Qualifier string
	Name      string
}

func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// QualifiedName renders the reference with its qualifier, if any.
func (i *Ident) QualifiedName() string { return i.String() }

// NumberLit is an integer or float literal (distinguished by a dot).
type NumberLit struct{ Text string }

func (n *NumberLit) String() string { return n.Text }

// IsFloat reports whether the literal has a fractional part.
func (n *NumberLit) IsFloat() bool { return strings.Contains(n.Text, ".") }

// StringLit is a quoted string literal.
type StringLit struct{ Val string }

func (s *StringLit) String() string { return "'" + strings.ReplaceAll(s.Val, "'", "''") + "'" }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Val bool }

func (b *BoolLit) String() string {
	if b.Val {
		return "TRUE"
	}
	return "FALSE"
}

// NullLit is the NULL literal.
type NullLit struct{}

func (*NullLit) String() string { return "NULL" }

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	X  ExprNode
}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.X)
	}
	return fmt.Sprintf("(%s%s)", u.Op, u.X)
}

// BinaryExpr applies a binary operator: + - * / = <> < <= > >= AND OR.
type BinaryExpr struct {
	Op   string
	L, R ExprNode
}

func (b *BinaryExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// IsNullNode is x IS [NOT] NULL.
type IsNullNode struct {
	X      ExprNode
	Negate bool
}

func (n *IsNullNode) String() string {
	if n.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", n.X)
	}
	return fmt.Sprintf("(%s IS NULL)", n.X)
}

// InNode is `x [NOT] IN (e1, e2, ...)`.
type InNode struct {
	X      ExprNode
	List   []ExprNode
	Negate bool
}

func (n *InNode) String() string {
	parts := make([]string, len(n.List))
	for i, e := range n.List {
		parts[i] = e.String()
	}
	op := "IN"
	if n.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", n.X, op, strings.Join(parts, ", "))
}

// WhenClause is one WHEN/THEN branch of a CaseNode.
type WhenClause struct {
	Cond, Then ExprNode
}

// CaseNode is a CASE expression (searched when Operand is nil).
type CaseNode struct {
	Operand ExprNode
	Whens   []WhenClause
	Else    ExprNode
}

func (c *CaseNode) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" " + c.Operand.String())
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		sb.WriteString(" ELSE " + c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// FuncExpr is a function call: scalar or aggregate, possibly DISTINCT,
// possibly count(*).
type FuncExpr struct {
	Name     string // lower-cased
	Distinct bool
	Star     bool // count(*)
	Args     []ExprNode
}

func (f *FuncExpr) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", f.Name, d, strings.Join(parts, ", "))
}

// AllCompare is `left op ALL (subquery)` — the paper's Query 3 HAVING.
type AllCompare struct {
	Left ExprNode
	Op   string
	Sub  *SelectStmt
}

func (a *AllCompare) String() string {
	return fmt.Sprintf("(%s %s ALL (%s))", a.Left, a.Op, a.Sub)
}

// WindowSpec is a `[Range By '...' [Slide By '...']]` window clause on a
// FROM item.
type WindowSpec struct {
	// Now marks `[Range By 'NOW']`: the current epoch.
	Now bool
	// Range is the window length (zero when Now).
	Range time.Duration
	// Slide, if positive, overrides the deployment epoch as the emission
	// period for this window.
	Slide time.Duration
	// Raw and RawSlide preserve the original duration text for printing.
	Raw, RawSlide string
}

func (w *WindowSpec) String() string {
	if w.Now {
		return "[Range By 'NOW']"
	}
	if w.Slide > 0 {
		return fmt.Sprintf("[Range By '%s' Slide By '%s']", w.Raw, w.RawSlide)
	}
	return fmt.Sprintf("[Range By '%s']", w.Raw)
}

// FromItem is one source in FROM: a named stream or a subquery, with an
// optional alias and window.
type FromItem struct {
	Stream string // base stream name ("" if subquery)
	Sub    *SelectStmt
	Alias  string
	Window *WindowSpec
}

func (f *FromItem) String() string {
	var sb strings.Builder
	if f.Sub != nil {
		fmt.Fprintf(&sb, "(%s)", f.Sub)
	} else {
		sb.WriteString(f.Stream)
	}
	if f.Alias != "" {
		sb.WriteString(" AS " + f.Alias)
	}
	if f.Window != nil {
		sb.WriteString(" " + f.Window.String())
	}
	return sb.String()
}

// Binding returns the name this item is referenced by: its alias if given,
// else the stream name.
func (f *FromItem) Binding() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Stream
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Star  bool // bare *
	Expr  ExprNode
	Alias string
}

func (s *SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return fmt.Sprintf("%s AS %s", s.Expr, s.Alias)
	}
	return s.Expr.String()
}

// SelectStmt is a parsed SELECT statement.
type SelectStmt struct {
	Items   []SelectItem
	From    []FromItem
	Where   ExprNode
	GroupBy []ExprNode
	Having  ExprNode
}

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	for i, f := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(f.String())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	return sb.String()
}

// ParseDuration parses the quoted duration text of a window clause:
// "5 sec", "30 minutes", "200 ms", "1 hour", "2.5 min", "5s".
func ParseDuration(text string) (time.Duration, error) {
	s := strings.TrimSpace(strings.ToLower(text))
	if s == "" {
		return 0, fmt.Errorf("cql: empty duration")
	}
	// Split numeric prefix from unit suffix.
	i := 0
	for i < len(s) && (isDigit(s[i]) || s[i] == '.') {
		i++
	}
	numText := strings.TrimSpace(s[:i])
	unitText := strings.TrimSpace(s[i:])
	if numText == "" {
		return 0, fmt.Errorf("cql: duration %q has no numeric part", text)
	}
	var num float64
	if _, err := fmt.Sscanf(numText, "%g", &num); err != nil {
		return 0, fmt.Errorf("cql: duration %q: bad number %q", text, numText)
	}
	if num < 0 {
		return 0, fmt.Errorf("cql: duration %q is negative", text)
	}
	var unit time.Duration
	switch unitText {
	case "ms", "msec", "millisecond", "milliseconds":
		unit = time.Millisecond
	case "s", "sec", "secs", "second", "seconds":
		unit = time.Second
	case "m", "min", "mins", "minute", "minutes":
		unit = time.Minute
	case "h", "hr", "hrs", "hour", "hours":
		unit = time.Hour
	case "d", "day", "days":
		unit = 24 * time.Hour
	default:
		return 0, fmt.Errorf("cql: duration %q: unknown unit %q", text, unitText)
	}
	d := time.Duration(num * float64(unit))
	if d <= 0 {
		return 0, fmt.Errorf("cql: duration %q is not positive", text)
	}
	return d, nil
}
