package cql

import (
	"fmt"
	"strings"
)

// Parser is a recursive-descent parser over the token stream.
type Parser struct {
	toks  []Token
	pos   int
	src   string
	depth int
}

// maxParseDepth bounds recursive productions (parenthesised expressions,
// NOT/unary chains, subqueries) so adversarial input produces a parse
// error instead of overflowing the goroutine stack, which is fatal to
// the whole process.
const maxParseDepth = 500

// enter guards one level of grammar recursion; exit undoes it.
func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errf("expression or query nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *Parser) exit() { p.depth-- }

// Parse parses one SELECT statement and requires the whole input to be
// consumed.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after end of statement", p.peek())
	}
	return stmt, nil
}

// MustParse is Parse that panics on error; for statically known queries.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

// peekAhead looks n tokens past the cursor, clamped at EOF.
func (p *Parser) peekAhead(n int) Token {
	i := p.pos + n
	if i >= len(p.toks) {
		i = len(p.toks) - 1
	}
	return p.toks[i]
}

// next consumes and returns the next token; it never advances past EOF.
func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("cql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// acceptKeyword consumes kw if next, reporting whether it did.
func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

// acceptSymbol consumes sym if next, reporting whether it did.
func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %s", sym, p.peek())
	}
	return nil
}

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		stmt.From = append(stmt.From, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	return stmt, nil
}

func (p *Parser) parseSelectItem() (*SelectItem, error) {
	if p.acceptSymbol("*") {
		return &SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, p.errf("expected alias after AS, got %s", t)
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		// Bare alias: `count(*) n`.
		p.next()
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseFromItem() (*FromItem, error) {
	item := &FromItem{}
	if p.acceptSymbol("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		item.Sub = sub
	} else {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, p.errf("expected stream name or subquery in FROM, got %s", t)
		}
		item.Stream = t.Text
	}
	// Optional alias (with or without AS), but not a window bracket.
	if p.acceptKeyword("AS") {
		t := p.next()
		if t.Kind != TokIdent {
			return nil, p.errf("expected alias after AS, got %s", t)
		}
		item.Alias = t.Text
	} else if t := p.peek(); t.Kind == TokIdent {
		p.next()
		item.Alias = t.Text
	}
	// Optional window, which may also precede the alias in the paper's
	// style: `FROM merge_input s [Range By '5 min']` puts the alias first,
	// but `FROM x [Range By '5 sec'] x2` is tolerated too.
	if w, err := p.tryParseWindow(); err != nil {
		return nil, err
	} else if w != nil {
		item.Window = w
		// A trailing alias after the window.
		if item.Alias == "" {
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.Kind != TokIdent {
					return nil, p.errf("expected alias after AS, got %s", t)
				}
				item.Alias = t.Text
			} else if t := p.peek(); t.Kind == TokIdent {
				p.next()
				item.Alias = t.Text
			}
		}
	}
	if item.Sub != nil && item.Alias == "" {
		return nil, p.errf("subquery in FROM requires an alias")
	}
	return item, nil
}

// tryParseWindow parses `[Range By '...']` if present.
func (p *Parser) tryParseWindow() (*WindowSpec, error) {
	if !p.acceptSymbol("[") {
		return nil, nil
	}
	if err := p.expectKeyword("RANGE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return nil, err
	}
	t := p.next()
	var text string
	switch {
	case t.Kind == TokString:
		text = t.Text
	case t.Kind == TokKeyword && t.Text == "NOW":
		text = "NOW"
	default:
		return nil, p.errf("expected quoted duration or NOW in window, got %s", t)
	}
	var slideText string
	if p.acceptKeyword("SLIDE") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		st := p.next()
		if st.Kind != TokString {
			return nil, p.errf("expected quoted duration after Slide By, got %s", st)
		}
		slideText = st.Text
	}
	if err := p.expectSymbol("]"); err != nil {
		return nil, err
	}
	if strings.EqualFold(strings.TrimSpace(text), "now") {
		if slideText != "" {
			return nil, p.errf("[Range By 'NOW'] cannot carry a Slide By clause")
		}
		return &WindowSpec{Now: true, Raw: "NOW"}, nil
	}
	d, err := ParseDuration(text)
	if err != nil {
		return nil, err
	}
	spec := &WindowSpec{Range: d, Raw: text}
	if slideText != "" {
		s, err := ParseDuration(slideText)
		if err != nil {
			return nil, err
		}
		spec.Slide = s
		spec.RawSlide = slideText
	}
	return spec, nil
}

// Expression grammar, lowest precedence first.

func (p *Parser) parseExpr() (ExprNode, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	return p.parseOr()
}

func (p *Parser) parseOr() (ExprNode, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (ExprNode, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (ExprNode, error) {
	if p.acceptKeyword("NOT") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.exit()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (ExprNode, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullNode{X: l, Negate: negate}, nil
	}
	// [NOT] IN (list) / [NOT] BETWEEN lo AND hi
	negate := false
	if t, u := p.peek(), p.peekAhead(1); t.Kind == TokKeyword && t.Text == "NOT" &&
		u.Kind == TokKeyword && (u.Text == "IN" || u.Text == "BETWEEN") {
		p.next()
		negate = true
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		// Desugar: x BETWEEN lo AND hi = (x >= lo AND x <= hi).
		within := &BinaryExpr{Op: "AND",
			L: &BinaryExpr{Op: ">=", L: l, R: lo},
			R: &BinaryExpr{Op: "<=", L: l, R: hi},
		}
		if negate {
			return &UnaryExpr{Op: "NOT", X: within}, nil
		}
		return within, nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		n := &InNode{X: l, Negate: negate}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			n.List = append(n.List, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return n, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "<", ">", "="} {
		if p.acceptSymbol(op) {
			// `op ALL (subquery)`
			if p.acceptKeyword("ALL") {
				if err := p.expectSymbol("("); err != nil {
					return nil, err
				}
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return &AllCompare{Left: l, Op: op, Sub: sub}, nil
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *Parser) parseAdditive() (ExprNode, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "+", L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (ExprNode, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "*", L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (ExprNode, error) {
	if p.acceptSymbol("-") {
		if err := p.enter(); err != nil {
			return nil, err
		}
		defer p.exit()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (ExprNode, error) {
	t := p.next()
	switch t.Kind {
	case TokNumber:
		return &NumberLit{Text: t.Text}, nil
	case TokString:
		return &StringLit{Val: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			return &BoolLit{Val: true}, nil
		case "FALSE":
			return &BoolLit{Val: false}, nil
		case "NULL":
			return &NullLit{}, nil
		case "CASE":
			return p.parseCase()
		}
		return nil, p.errf("unexpected keyword %s in expression", t)
	case TokSymbol:
		if t.Text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errf("unexpected %s in expression", t)
	case TokIdent:
		// Function call?
		if p.acceptSymbol("(") {
			return p.parseCallArgs(strings.ToLower(t.Text))
		}
		// Qualified name?
		if p.acceptSymbol(".") {
			nt := p.next()
			if nt.Kind != TokIdent {
				return nil, p.errf("expected column after %q., got %s", t.Text, nt)
			}
			return &Ident{Qualifier: t.Text, Name: nt.Text}, nil
		}
		return &Ident{Name: t.Text}, nil
	}
	return nil, p.errf("unexpected %s", t)
}

// parseCase parses CASE [operand] WHEN ... THEN ... [ELSE ...] END (the
// CASE keyword is already consumed).
func (p *Parser) parseCase() (ExprNode, error) {
	c := &CaseNode{}
	if t := p.peek(); !(t.Kind == TokKeyword && t.Text == "WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN branch")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *Parser) parseCallArgs(name string) (ExprNode, error) {
	f := &FuncExpr{Name: name}
	if p.acceptSymbol("*") {
		f.Star = true
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptSymbol(")") {
		return f, nil // zero-arg call
	}
	f.Distinct = p.acceptKeyword("DISTINCT")
	for {
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, a)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return f, nil
}
