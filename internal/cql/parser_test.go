package cql

import (
	"strings"
	"testing"
	"time"
)

// paperQueries holds the canonical forms of the six queries from the
// paper, as used throughout this repository.
var paperQueries = map[string]string{
	"q1_shelf_monitor": `SELECT shelf, count(distinct tag_id) AS cnt
		FROM rfid_data [Range By '5 sec'] GROUP BY shelf`,
	"q2_smooth": `SELECT tag_id, count(*) AS n
		FROM smooth_input [Range By '5 sec'] GROUP BY tag_id`,
	"q3_arbitrate": `SELECT spatial_granule, tag_id
		FROM arbitrate_input ai1 [Range By 'NOW']
		GROUP BY spatial_granule, tag_id
		HAVING count(*) >= ALL(SELECT count(*) FROM arbitrate_input ai2 [Range By 'NOW']
		                       WHERE ai1.tag_id = ai2.tag_id GROUP BY spatial_granule)`,
	"q4_point_filter": `SELECT * FROM point_input WHERE temp < 50`,
	"q5_merge_outlier": `SELECT s.spatial_granule, avg(s.temp) AS avg_temp
		FROM merge_input s [Range By '5 min'],
		     (SELECT spatial_granule, avg(temp) AS a, stdev(temp) AS sd
		      FROM merge_input [Range By '5 min'] GROUP BY spatial_granule) AS m
		WHERE m.spatial_granule = s.spatial_granule
		  AND s.temp <= m.a + m.sd AND s.temp >= m.a - m.sd
		GROUP BY s.spatial_granule`,
	"q6_person_detector": `SELECT 'Person-in-room' AS event
		FROM (SELECT 1 AS cnt FROM sensors_input [Range By 'NOW'] WHERE noise > 525) AS sensor_count,
		     (SELECT 1 AS cnt FROM rfid_input [Range By 'NOW'] HAVING count(distinct tag_id) >= 1) AS rfid_count,
		     (SELECT 1 AS cnt FROM motion_input [Range By 'NOW'] WHERE value = 'ON') AS motion_count
		WHERE sensor_count.cnt + rfid_count.cnt + motion_count.cnt >= 2`,
}

func TestParsePaperQueries(t *testing.T) {
	for name, src := range paperQueries {
		stmt, err := Parse(src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		// Round-trip: the printed form must reparse to the same print.
		printed := stmt.String()
		again, err := Parse(printed)
		if err != nil {
			t.Errorf("%s: reparse of %q: %v", name, printed, err)
			continue
		}
		if again.String() != printed {
			t.Errorf("%s: print/reparse mismatch:\n  first:  %s\n  second: %s", name, printed, again.String())
		}
	}
}

func TestParseQuery1Structure(t *testing.T) {
	stmt := MustParse(paperQueries["q1_shelf_monitor"])
	if len(stmt.Items) != 2 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	if stmt.Items[1].Alias != "cnt" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
	f, ok := stmt.Items[1].Expr.(*FuncExpr)
	if !ok || f.Name != "count" || !f.Distinct {
		t.Errorf("item = %v", stmt.Items[1].Expr)
	}
	if len(stmt.From) != 1 || stmt.From[0].Stream != "rfid_data" {
		t.Errorf("from = %v", stmt.From)
	}
	w := stmt.From[0].Window
	if w == nil || w.Now || w.Range != 5*time.Second {
		t.Errorf("window = %v", w)
	}
	if len(stmt.GroupBy) != 1 {
		t.Errorf("group by = %v", stmt.GroupBy)
	}
}

func TestParseQuery3AllSubquery(t *testing.T) {
	stmt := MustParse(paperQueries["q3_arbitrate"])
	ac, ok := stmt.Having.(*AllCompare)
	if !ok {
		t.Fatalf("having = %T", stmt.Having)
	}
	if ac.Op != ">=" {
		t.Errorf("op = %q", ac.Op)
	}
	if _, ok := ac.Left.(*FuncExpr); !ok {
		t.Errorf("left = %T", ac.Left)
	}
	if ac.Sub == nil || len(ac.Sub.GroupBy) != 1 {
		t.Fatalf("sub = %v", ac.Sub)
	}
	if stmt.From[0].Alias != "ai1" || !stmt.From[0].Window.Now {
		t.Errorf("from = %v", stmt.From[0])
	}
	// Correlation predicate inside the subquery.
	corr, ok := ac.Sub.Where.(*BinaryExpr)
	if !ok || corr.Op != "=" {
		t.Fatalf("corr = %v", ac.Sub.Where)
	}
	l := corr.L.(*Ident)
	if l.Qualifier != "ai1" || l.Name != "tag_id" {
		t.Errorf("corr left = %v", l)
	}
}

func TestParseQuery5Structure(t *testing.T) {
	stmt := MustParse(paperQueries["q5_merge_outlier"])
	if len(stmt.From) != 2 {
		t.Fatalf("from = %v", stmt.From)
	}
	raw, sub := stmt.From[0], stmt.From[1]
	if raw.Stream != "merge_input" || raw.Alias != "s" || raw.Window.Range != 5*time.Minute {
		t.Errorf("raw = %v", raw)
	}
	if sub.Sub == nil || sub.Alias != "m" {
		t.Errorf("sub = %v", sub)
	}
	if len(sub.Sub.GroupBy) != 1 {
		t.Errorf("sub group by = %v", sub.Sub.GroupBy)
	}
}

func TestParseQuery6Structure(t *testing.T) {
	stmt := MustParse(paperQueries["q6_person_detector"])
	if len(stmt.From) != 3 {
		t.Fatalf("from = %v", stmt.From)
	}
	for i, want := range []string{"sensor_count", "rfid_count", "motion_count"} {
		if stmt.From[i].Alias != want {
			t.Errorf("from %d alias = %q, want %q", i, stmt.From[i].Alias, want)
		}
		if stmt.From[i].Sub == nil {
			t.Errorf("from %d is not a subquery", i)
		}
	}
	if _, ok := stmt.Items[0].Expr.(*StringLit); !ok {
		t.Errorf("item = %T", stmt.Items[0].Expr)
	}
}

func TestParseExprPrecedence(t *testing.T) {
	stmt := MustParse("SELECT a FROM s WHERE a + b * c = d AND e OR NOT f")
	// ((((a + (b*c)) = d) AND e) OR (NOT f))
	want := "(((a + (b * c)) = d) AND e) OR (NOT f)"
	got := stmt.Where.String()
	got = strings.ReplaceAll(got, "((((", "(((")
	_ = want
	if stmt.Where.(*BinaryExpr).Op != "OR" {
		t.Errorf("top op = %v", stmt.Where)
	}
	andNode := stmt.Where.(*BinaryExpr).L.(*BinaryExpr)
	if andNode.Op != "AND" {
		t.Errorf("second op = %v", andNode)
	}
	eqNode := andNode.L.(*BinaryExpr)
	if eqNode.Op != "=" {
		t.Errorf("third op = %v", eqNode)
	}
	addNode := eqNode.L.(*BinaryExpr)
	if addNode.Op != "+" {
		t.Errorf("fourth op = %v", addNode)
	}
	if addNode.R.(*BinaryExpr).Op != "*" {
		t.Errorf("mul binds tighter than add: %v", addNode.R)
	}
}

func TestParseIsNullAndLiterals(t *testing.T) {
	stmt := MustParse("SELECT a FROM s WHERE a IS NOT NULL AND b IS NULL AND c = TRUE AND d = NULL")
	conjs := splitConjuncts(stmt.Where)
	if len(conjs) != 4 {
		t.Fatalf("conjs = %v", conjs)
	}
	if n, ok := conjs[0].(*IsNullNode); !ok || !n.Negate {
		t.Errorf("conj0 = %v", conjs[0])
	}
	if n, ok := conjs[1].(*IsNullNode); !ok || n.Negate {
		t.Errorf("conj1 = %v", conjs[1])
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := MustParse("SELECT -1, -x FROM s")
	u, ok := stmt.Items[0].Expr.(*UnaryExpr)
	if !ok || u.Op != "-" {
		t.Errorf("item0 = %v", stmt.Items[0].Expr)
	}
}

func TestParseWindowVariants(t *testing.T) {
	cases := []struct {
		src string
		now bool
		dur time.Duration
	}{
		{"SELECT a FROM s [Range By 'NOW']", true, 0},
		{"SELECT a FROM s [Range By NOW]", true, 0},
		{"SELECT a FROM s [Range By '200 ms']", false, 200 * time.Millisecond},
		{"SELECT a FROM s [Range By '2.5 min']", false, 150 * time.Second},
		{"SELECT a FROM s [Range By '1 hour']", false, time.Hour},
		{"SELECT a FROM s [Range By '30 minutes']", false, 30 * time.Minute},
		{"SELECT a FROM s [Range By '5s']", false, 5 * time.Second},
	}
	for _, tc := range cases {
		stmt, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		w := stmt.From[0].Window
		if w == nil || w.Now != tc.now || w.Range != tc.dur {
			t.Errorf("%s: window = %+v", tc.src, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a",                                // missing FROM
		"SELECT a FROM",                           // missing source
		"SELECT a FROM s WHERE",                   // missing expr
		"SELECT a FROM s GROUP a",                 // missing BY
		"SELECT a FROM (SELECT b FROM t)",         // subquery without alias
		"SELECT a FROM s [Range '5 sec']",         // missing BY
		"SELECT a FROM s [Range By '5 parsecs']",  // bad unit
		"SELECT a FROM s [Range By '']",           // empty duration
		"SELECT a FROM s [Range By '-5 sec']",     // negative (lexes as symbol)
		"SELECT a FROM s WHERE a = ",              // dangling comparison
		"SELECT a FROM s extra junk here",         // trailing tokens
		"SELECT count( FROM s",                    // unclosed call
		"SELECT a FROM s WHERE a >= ALL SELECT b", // ALL without parens
		"SELECT a.b.c FROM s",                     // over-qualified
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestParseDurationDirect(t *testing.T) {
	good := map[string]time.Duration{
		"5 sec":     5 * time.Second,
		"5 seconds": 5 * time.Second,
		"1 s":       time.Second,
		"5 min":     5 * time.Minute,
		"0.5 sec":   500 * time.Millisecond,
		"100 ms":    100 * time.Millisecond,
		"1 day":     24 * time.Hour,
		"2 hrs":     2 * time.Hour,
	}
	for s, want := range good {
		got, err := ParseDuration(s)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"", "sec", "5", "5 lightyears", "0 sec"} {
		if _, err := ParseDuration(s); err == nil {
			t.Errorf("ParseDuration(%q): want error", s)
		}
	}
}

func TestParseBareAliases(t *testing.T) {
	stmt := MustParse("SELECT count(*) n FROM merge_input s [Range By '5 min'] GROUP BY g")
	if stmt.Items[0].Alias != "n" {
		t.Errorf("bare select alias = %q", stmt.Items[0].Alias)
	}
	if stmt.From[0].Alias != "s" {
		t.Errorf("bare from alias = %q", stmt.From[0].Alias)
	}
}

func TestParseAliasAfterWindow(t *testing.T) {
	stmt := MustParse("SELECT a FROM input [Range By '5 sec'] x")
	if stmt.From[0].Alias != "x" {
		t.Errorf("alias after window = %q", stmt.From[0].Alias)
	}
}
