package cql

import (
	"strings"
	"testing"
)

// TestParseDepthLimited is the regression test for a fuzz-class crash:
// the recursive-descent parser had no depth bound, so adversarial
// nesting (millions of parentheses, NOT chains, unary-minus chains, or
// nested subqueries) overflowed the goroutine stack — a fatal,
// unrecoverable runtime error that kills the whole process. Each shape
// must now fail with a parse error instead.
func TestParseDepthLimited(t *testing.T) {
	deep := maxParseDepth * 4
	cases := map[string]string{
		"parens":     "SELECT * FROM s WHERE a = " + strings.Repeat("(", deep) + "1" + strings.Repeat(")", deep),
		"not-chain":  "SELECT * FROM s WHERE " + strings.Repeat("NOT ", deep) + "TRUE",
		"neg-chain":  "SELECT * FROM s WHERE a = " + strings.Repeat("- ", deep) + "1",
		"subqueries": "SELECT * FROM " + strings.Repeat("(SELECT * FROM ", deep) + "s" + strings.Repeat(") AS x", deep),
	}
	for name, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("%s: deeply nested input parsed without error", name)
		} else if !strings.Contains(err.Error(), "nesting exceeds") {
			t.Errorf("%s: unexpected error: %v", name, err)
		}
	}
}

// TestParseDepthAllowsReasonableNesting pins the limit well above any
// realistic query so the guard cannot reject legitimate input.
func TestParseDepthAllowsReasonableNesting(t *testing.T) {
	q := "SELECT * FROM s WHERE a = " + strings.Repeat("(", 100) + "1" + strings.Repeat(")", 100) +
		" AND " + strings.Repeat("NOT ", 100) + "TRUE"
	if _, err := Parse(q); err != nil {
		t.Fatalf("100-deep nesting should parse: %v", err)
	}
}
