package cql

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"esp/internal/stream"
)

func TestParseInExpression(t *testing.T) {
	stmt := MustParse("SELECT tag_id FROM rfid_data WHERE tag_id IN ('a', 'b', 'c')")
	in, ok := stmt.Where.(*InNode)
	if !ok {
		t.Fatalf("where = %T", stmt.Where)
	}
	if in.Negate || len(in.List) != 3 {
		t.Errorf("in = %+v", in)
	}
	stmt = MustParse("SELECT tag_id FROM rfid_data WHERE shelf NOT IN (1, 2)")
	in, ok = stmt.Where.(*InNode)
	if !ok || !in.Negate {
		t.Fatalf("where = %#v", stmt.Where)
	}
	// Round-trips.
	printed := stmt.String()
	if _, err := Parse(printed); err != nil {
		t.Errorf("reparse of %q: %v", printed, err)
	}
}

func TestParseInErrors(t *testing.T) {
	bad := []string{
		"SELECT a FROM s WHERE a IN ()",
		"SELECT a FROM s WHERE a IN 1, 2",
		"SELECT a FROM s WHERE a NOT IN",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestPlanInFilter(t *testing.T) {
	g, err := PlanString(
		"SELECT tag_id FROM rfid_data WHERE tag_id IN ('A', 'B')",
		testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	keep, _ := g.Push("rfid_data", stream.NewTuple(at(0.1), stream.String("A"), stream.Int(0)))
	drop, _ := g.Push("rfid_data", stream.NewTuple(at(0.2), stream.String("Z"), stream.Int(0)))
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("IN filter: keep=%v drop=%v", keep, drop)
	}
}

func TestPlanNotInFilter(t *testing.T) {
	g, err := PlanString(
		"SELECT tag_id FROM rfid_data WHERE shelf NOT IN (0)",
		testCatalog, PlanConfig{})
	if err != nil {
		t.Fatal(err)
	}
	drop, _ := g.Push("rfid_data", stream.NewTuple(at(0.1), stream.String("A"), stream.Int(0)))
	keep, _ := g.Push("rfid_data", stream.NewTuple(at(0.2), stream.String("A"), stream.Int(3)))
	if len(keep) != 1 || len(drop) != 0 {
		t.Errorf("NOT IN filter: keep=%v drop=%v", keep, drop)
	}
}

// TestQuickParserNeverPanics lexes and parses random byte soup and random
// mutations of valid queries: every outcome must be a value or an error,
// never a panic or an out-of-range access.
func TestQuickParserNeverPanics(t *testing.T) {
	seeds := make([]string, 0, len(paperQueries))
	for _, q := range paperQueries {
		seeds = append(seeds, q)
	}
	alphabet := []rune("SELECT FROM WHERE GROUP BY HAVING count(*)<>='x,.[]+-/5 sec NOW ALL IN NOT")
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic: %v", r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var src string
		if r.Intn(2) == 0 {
			// Random soup.
			n := r.Intn(80)
			var sb strings.Builder
			for i := 0; i < n; i++ {
				sb.WriteRune(alphabet[r.Intn(len(alphabet))])
			}
			src = sb.String()
		} else {
			// Mutated valid query: delete or duplicate a random chunk.
			q := seeds[r.Intn(len(seeds))]
			if len(q) > 4 {
				i := r.Intn(len(q) - 2)
				j := i + 1 + r.Intn(len(q)-i-1)
				if r.Intn(2) == 0 {
					src = q[:i] + q[j:]
				} else {
					src = q[:i] + q[i:j] + q[i:j] + q[j:]
				}
			} else {
				src = q
			}
		}
		stmt, err := Parse(src)
		if err == nil && stmt != nil {
			_ = stmt.String() // printing must not panic either
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestQuickPlannerNeverPanics plans random valid-shaped queries against
// the test catalog; planning must return a graph or an error, not panic.
func TestQuickPlannerNeverPanics(t *testing.T) {
	cols := []string{"tag_id", "shelf", "missing", "rfid_data.tag_id"}
	aggs := []string{"count(*)", "count(distinct tag_id)", "sum(shelf)", "avg(shelf)", "min(tag_id)"}
	windows := []string{"", "[Range By '5 sec']", "[Range By 'NOW']"}
	f := func(seed int64) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic: %v", r)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("SELECT ")
		nItems := 1 + r.Intn(3)
		for i := 0; i < nItems; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			if r.Intn(2) == 0 {
				sb.WriteString(cols[r.Intn(len(cols))])
			} else {
				sb.WriteString(aggs[r.Intn(len(aggs))])
			}
		}
		sb.WriteString(" FROM rfid_data ")
		sb.WriteString(windows[r.Intn(len(windows))])
		if r.Intn(2) == 0 {
			sb.WriteString(" WHERE shelf >= 0")
		}
		if r.Intn(2) == 0 {
			sb.WriteString(" GROUP BY " + cols[r.Intn(2)])
		}
		if r.Intn(3) == 0 {
			sb.WriteString(" HAVING count(*) > 1")
		}
		_, _ = PlanString(sb.String(), testCatalog, PlanConfig{Slide: time.Second})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
