package cql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"esp/internal/stream"
)

// Catalog maps stream names to their schemas.
type Catalog map[string]*stream.Schema

// PlanConfig supplies execution parameters the query text does not carry.
type PlanConfig struct {
	// Slide is the emission period (epoch) for windowed queries. Sliding
	// windows emit every Slide; `[Range By 'NOW']` windows cover exactly
	// one Slide. If zero, ranged windows tumble (Slide = Range) and NOW
	// windows are an error.
	Slide time.Duration
	// Tables are static relations referenceable in FROM (inventory lists,
	// expected-tag relations).
	Tables map[string]*stream.Table
	// TieBreak, if set, resolves equal scores in `>= ALL` (Arbitrate)
	// rewrites — the paper's §4.3.1 weaker-antenna calibration. The
	// tuples passed have the ArgMax output schema.
	TieBreak func(a, b stream.Tuple) bool
	// NoOptimize disables the plan-rewrite pass (optimize.go), keeping
	// the naive operator order the query text implies. Used by the
	// oracle's optimized-vs-unoptimized differential and for debugging.
	NoOptimize bool
}

// Plan compiles a parsed statement into an executable multi-input Graph.
// Input legs are registered under the statement's base stream names.
func Plan(stmt *SelectStmt, cat Catalog, cfg PlanConfig) (*stream.Graph, error) {
	p := &planner{cat: cat, cfg: cfg}
	g, err := p.plan(stmt)
	if err != nil {
		return nil, err
	}
	if err := g.Open(); err != nil {
		return nil, err
	}
	return g, nil
}

// PlanString parses and plans src in one step.
func PlanString(src string, cat Catalog, cfg PlanConfig) (*stream.Graph, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Plan(stmt, cat, cfg)
}

type planner struct {
	cat Catalog
	cfg PlanConfig
	// rewrites logs the optimizer rewrites that fired, in order.
	rewrites []string
	// explain, when non-nil, accumulates the plan rendering (Explain).
	explain *PlanExplain
}

// aggFuncs names the aggregate functions; anything else in call position
// is a scalar function.
func isAggName(name string) bool {
	_, ok := stream.LookupAggFunc(name)
	return ok
}

// plan dispatches on the statement's FROM shape.
func (p *planner) plan(stmt *SelectStmt) (*stream.Graph, error) {
	streams, tables := p.splitFrom(stmt.From)
	switch {
	case len(streams) == 1 && len(tables) == 0:
		return p.planSingle(stmt, &streams[0])
	case len(streams) == 1 && len(tables) == 1:
		return p.planStreamTableJoin(stmt, &streams[0], &tables[0])
	case len(streams) == 2 && len(tables) == 0 && p.isSelfAggJoin(stmt, streams):
		return p.planSelfAggJoin(stmt, streams)
	case len(streams) >= 2 && len(tables) == 0 && p.allSubqueries(streams):
		return p.planCombine(stmt, streams)
	default:
		return nil, fmt.Errorf("cql: unsupported FROM shape: %d stream source(s), %d table(s)", len(streams), len(tables))
	}
}

// splitFrom separates stream sources from static-table references.
func (p *planner) splitFrom(items []FromItem) (streams, tables []FromItem) {
	for _, it := range items {
		if it.Sub == nil {
			if _, isTable := p.cfg.Tables[it.Stream]; isTable {
				tables = append(tables, it)
				continue
			}
		}
		streams = append(streams, it)
	}
	return streams, tables
}

func (p *planner) allSubqueries(items []FromItem) bool {
	for _, it := range items {
		if it.Sub == nil {
			return false
		}
	}
	return true
}

// leg is a single-input chain fragment under construction.
type leg struct {
	input string // base stream name
	ops   []stream.Operator
	out   *stream.Schema
}

// planSingle handles one stream source (possibly a subquery), producing a
// one-leg graph.
func (p *planner) planSingle(stmt *SelectStmt, item *FromItem) (*stream.Graph, error) {
	lg, err := p.planLeg(stmt, item)
	if err != nil {
		return nil, err
	}
	lg.ops = p.optimize("leg "+lg.input, lg.ops)
	p.noteLeg(lg)
	g := stream.NewGraph()
	in, ok := p.cat[lg.input]
	if !ok {
		return nil, fmt.Errorf("cql: unknown stream %q", lg.input)
	}
	if err := g.AddLeg(lg.input, in, stream.NewChain(lg.ops...)); err != nil {
		return nil, err
	}
	return g, nil
}

// planLeg compiles a single-source statement into a chain fragment,
// recursing through FROM subqueries.
func (p *planner) planLeg(stmt *SelectStmt, item *FromItem) (*leg, error) {
	var lg *leg
	if item.Sub != nil {
		subStreams, subTables := p.splitFrom(item.Sub.From)
		if len(subStreams) != 1 || len(subTables) > 1 {
			return nil, fmt.Errorf("cql: nested subquery must have a single stream source")
		}
		var err error
		if len(subTables) == 1 {
			lg, err = p.planLegStreamTable(item.Sub, &subStreams[0], &subTables[0])
		} else {
			lg, err = p.planLeg(item.Sub, &subStreams[0])
		}
		if err != nil {
			return nil, err
		}
	} else {
		in, ok := p.cat[item.Stream]
		if !ok {
			return nil, fmt.Errorf("cql: unknown stream %q", item.Stream)
		}
		lg = &leg{input: item.Stream, out: in}
	}
	res := singleResolver(item.Binding(), lg.out)
	if err := p.applySelect(lg, stmt, item.Window, res); err != nil {
		return nil, err
	}
	return lg, nil
}

// applySelect appends WHERE / aggregation / HAVING / projection operators
// for stmt onto the leg. res resolves identifiers against the leg's
// current output.
func (p *planner) applySelect(lg *leg, stmt *SelectStmt, window *WindowSpec, res resolver) error {
	if stmt.Where != nil {
		if containsAgg(stmt.Where) {
			return fmt.Errorf("cql: aggregates are not allowed in WHERE")
		}
		pred, err := compileExpr(stmt.Where, res, nil)
		if err != nil {
			return err
		}
		lg.push(stream.NewFilter(pred))
	}

	aggs := collectAggs(stmt)
	if len(aggs) == 0 && len(stmt.GroupBy) == 0 {
		if stmt.Having != nil {
			return fmt.Errorf("cql: HAVING requires aggregation or GROUP BY")
		}
		// Pure selection/projection.
		if isSelectStar(stmt) {
			return nil
		}
		proj, err := p.compileProjection(stmt.Items, res, nil)
		if err != nil {
			return err
		}
		lg.push(proj)
		lg.out = projectionHint(proj)
		return nil
	}

	// Windowed aggregation. The `>= ALL` HAVING becomes an ArgMax.
	var allCmp *AllCompare
	having := stmt.Having
	if ac, ok := having.(*AllCompare); ok {
		allCmp = ac
		having = nil
	}

	w, aggMap, err := p.buildWindowAgg(stmt, window, aggs, res)
	if err != nil {
		return err
	}
	if having != nil {
		postRes := singleResolver("", w.SchemaHint())
		h, err := compileExpr(having, postRes, aggMap)
		if err != nil {
			return fmt.Errorf("cql: HAVING: %w", err)
		}
		w.Agg.Having = h
	}
	lg.push(w.Agg)
	lg.out = w.SchemaHint()

	if allCmp != nil {
		am, err := p.buildArgMax(allCmp, w, aggMap)
		if err != nil {
			return err
		}
		lg.push(am)
	}

	// Final projection over the aggregate (or argmax) output.
	outNames, err := outputNames(lg.ops[len(lg.ops)-1])
	if err != nil {
		return err
	}
	postRes := namesResolver(outNames)
	proj, err := p.compileProjection(stmt.Items, postRes, aggMap)
	if err != nil {
		return err
	}
	lg.push(proj)
	lg.out = projectionHint(proj)
	return nil
}

// projectionHint builds a names-only schema for a planned projection, so
// enclosing queries can resolve against it before Open.
func projectionHint(proj *stream.Project) *stream.Schema {
	fields := make([]stream.Field, len(proj.Exprs))
	for i, ne := range proj.Exprs {
		fields[i] = stream.Field{Name: ne.Name, Kind: stream.KindNull}
	}
	return stream.MustSchema(fields...)
}

func (lg *leg) push(op stream.Operator) { lg.ops = append(lg.ops, op) }

// windowAggBuild carries a WindowAgg plus its planned output column names
// (the operator only knows its schema after Open, so the planner tracks
// names itself).
type windowAggBuild struct {
	Agg    *stream.WindowAgg
	groups []string
	aggs   []string
}

// SchemaHint returns a pseudo-schema listing output names with unknown
// kinds; only the names are used during planning.
func (w *windowAggBuild) SchemaHint() *stream.Schema {
	fields := make([]stream.Field, 0, len(w.groups)+len(w.aggs))
	for _, g := range w.groups {
		fields = append(fields, stream.Field{Name: g, Kind: stream.KindNull})
	}
	for _, a := range w.aggs {
		fields = append(fields, stream.Field{Name: a, Kind: stream.KindNull})
	}
	return stream.MustSchema(fields...)
}

// buildWindowAgg assembles the WindowAgg for a grouped/aggregated
// statement and the aggregate-call → output-column map.
func (p *planner) buildWindowAgg(stmt *SelectStmt, window *WindowSpec, aggs []*FuncExpr, res resolver) (*windowAggBuild, map[string]string, error) {
	rangeDur, slide, err := p.windowParams(window)
	if err != nil {
		return nil, nil, err
	}
	w := &stream.WindowAgg{Range: rangeDur, Slide: slide}
	build := &windowAggBuild{Agg: w}

	for i, g := range stmt.GroupBy {
		name := groupName(g, i)
		e, err := compileExpr(g, res, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("cql: GROUP BY: %w", err)
		}
		w.GroupBy = append(w.GroupBy, stream.NamedExpr{Name: name, Expr: e})
		build.groups = append(build.groups, name)
	}

	aggMap := make(map[string]string, len(aggs))
	aliasFor := aggAliases(stmt)
	for i, a := range aggs {
		spec, err := buildAggSpec(a, res)
		if err != nil {
			return nil, nil, err
		}
		name := aliasFor[a.String()]
		if name == "" {
			name = fmt.Sprintf("__agg%d", i)
		}
		spec.Name = name
		w.Aggs = append(w.Aggs, spec)
		build.aggs = append(build.aggs, name)
		aggMap[a.String()] = name
	}
	return build, aggMap, nil
}

// buildAggSpec compiles one aggregate call into an AggSpec (name unset).
func buildAggSpec(a *FuncExpr, res resolver) (stream.AggSpec, error) {
	fn, _ := stream.LookupAggFunc(a.Name)
	spec := stream.AggSpec{Func: fn, Distinct: a.Distinct}
	switch {
	case a.Star:
		if fn != stream.AggCount {
			return spec, fmt.Errorf("cql: %s(*) is not valid", a.Name)
		}
	case fn == stream.AggPercentile:
		if len(a.Args) != 2 {
			return spec, fmt.Errorf("cql: percentile takes (expr, quantile), got %s", a)
		}
		num, ok := a.Args[1].(*NumberLit)
		if !ok {
			return spec, fmt.Errorf("cql: percentile quantile must be a numeric literal, got %s", a.Args[1])
		}
		q, err := strconv.ParseFloat(num.Text, 64)
		if err != nil || q <= 0 || q >= 1 {
			return spec, fmt.Errorf("cql: percentile quantile %q out of (0,1)", num.Text)
		}
		spec.Param = q
		arg, err2 := compileExpr(a.Args[0], res, nil)
		if err2 != nil {
			return spec, fmt.Errorf("cql: %s: %w", a, err2)
		}
		spec.Arg = arg
	case len(a.Args) == 1:
		arg, err := compileExpr(a.Args[0], res, nil)
		if err != nil {
			return spec, fmt.Errorf("cql: %s: %w", a, err)
		}
		spec.Arg = arg
	default:
		return spec, fmt.Errorf("cql: aggregate %s must have exactly one argument", a)
	}
	return spec, nil
}

// windowParams derives (range, slide) from the window spec and config: a
// `Slide By` clause wins, then the configured epoch, then tumbling.
func (p *planner) windowParams(spec *WindowSpec) (time.Duration, time.Duration, error) {
	if spec == nil {
		return 0, 0, fmt.Errorf("cql: aggregation over a stream requires a [Range By ...] window")
	}
	slide := p.cfg.Slide
	if spec.Slide > 0 {
		slide = spec.Slide
	}
	if spec.Now {
		if slide <= 0 {
			return 0, 0, fmt.Errorf("cql: [Range By 'NOW'] requires PlanConfig.Slide (the epoch)")
		}
		return 0, slide, nil
	}
	if slide <= 0 {
		slide = spec.Range // tumbling
	}
	return spec.Range, slide, nil
}

// buildArgMax rewrites `HAVING <agg> >= ALL (SELECT <agg> FROM <same>
// WHERE <corr> GROUP BY <choose>)` into an ArgMax over the WindowAgg
// output: the choose columns are the subquery's GROUP BY, the partition
// columns are the outer GROUP BY minus the choose columns.
func (p *planner) buildArgMax(ac *AllCompare, w *windowAggBuild, aggMap map[string]string) (*stream.ArgMax, error) {
	if ac.Op != ">=" && ac.Op != ">" {
		return nil, fmt.Errorf("cql: only >= ALL / > ALL comparisons are supported, got %s ALL", ac.Op)
	}
	leftAgg, ok := ac.Left.(*FuncExpr)
	if !ok || !isAggName(leftAgg.Name) {
		return nil, fmt.Errorf("cql: left side of ALL comparison must be an aggregate, got %s", ac.Left)
	}
	scoreCol, ok := aggMap[leftAgg.String()]
	if !ok {
		return nil, fmt.Errorf("cql: ALL comparison aggregate %s not present in window aggregation", leftAgg)
	}
	if len(ac.Sub.GroupBy) == 0 {
		return nil, fmt.Errorf("cql: ALL subquery must GROUP BY the competing column(s)")
	}
	chooseSet := make(map[string]bool)
	var choose []stream.NamedExpr
	for i, g := range ac.Sub.GroupBy {
		name := groupName(g, i)
		if !containsString(w.groups, name) {
			return nil, fmt.Errorf("cql: ALL subquery groups by %q, which the outer query does not group by", name)
		}
		chooseSet[name] = true
		choose = append(choose, stream.NamedExpr{Name: name, Expr: stream.NewCol(name)})
	}
	var partition []stream.NamedExpr
	for _, g := range w.groups {
		if !chooseSet[g] {
			partition = append(partition, stream.NamedExpr{Name: g, Expr: stream.NewCol(g)})
		}
	}
	if len(partition) == 0 {
		return nil, fmt.Errorf("cql: ALL rewrite needs a correlated partition column (outer GROUP BY beyond the subquery's)")
	}
	return &stream.ArgMax{
		PartitionBy: partition,
		ChooseBy:    choose,
		Score:       stream.NamedExpr{Name: scoreCol, Expr: stream.NewCol(scoreCol)},
		Tie:         p.cfg.TieBreak,
	}, nil
}

// outputNames lists the planned output column names of an operator the
// planner built (WindowAgg or ArgMax).
func outputNames(op stream.Operator) ([]string, error) {
	switch o := op.(type) {
	case *stream.WindowAgg:
		var names []string
		for _, g := range o.GroupBy {
			names = append(names, g.Name)
		}
		for _, a := range o.Aggs {
			names = append(names, a.Name)
		}
		return names, nil
	case *stream.ArgMax:
		var names []string
		for _, g := range o.ChooseBy {
			names = append(names, g.Name)
		}
		for _, g := range o.PartitionBy {
			names = append(names, g.Name)
		}
		names = append(names, o.Score.Name)
		return names, nil
	default:
		return nil, fmt.Errorf("cql: internal: outputNames on %T", op)
	}
}

// compileProjection compiles the SELECT list into a Project operator.
func (p *planner) compileProjection(items []SelectItem, res resolver, aggMap map[string]string) (*stream.Project, error) {
	var exprs []stream.NamedExpr
	seen := make(map[string]bool, len(items))
	for i, it := range items {
		if it.Star {
			return nil, fmt.Errorf("cql: * cannot be mixed with other select items here")
		}
		e, err := compileExpr(it.Expr, res, aggMap)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = defaultColumnName(it.Expr, i)
		}
		key := strings.ToLower(name)
		if seen[key] {
			return nil, fmt.Errorf("cql: duplicate output column %q; use AS to alias", name)
		}
		seen[key] = true
		exprs = append(exprs, stream.NamedExpr{Name: name, Expr: e})
	}
	return stream.NewProject(exprs...), nil
}

func isSelectStar(stmt *SelectStmt) bool {
	return len(stmt.Items) == 1 && stmt.Items[0].Star
}

// defaultColumnName derives an output name for an unaliased select item.
func defaultColumnName(e ExprNode, i int) string {
	switch n := e.(type) {
	case *Ident:
		return n.Name
	case *FuncExpr:
		if n.Star {
			return n.Name
		}
		if len(n.Args) == 1 {
			if id, ok := n.Args[0].(*Ident); ok {
				return n.Name + "_" + id.Name
			}
		}
		return n.Name
	default:
		return fmt.Sprintf("col%d", i+1)
	}
}

func groupName(g ExprNode, i int) string {
	if id, ok := g.(*Ident); ok {
		return id.Name
	}
	return fmt.Sprintf("__g%d", i)
}

// aggAliases maps aggregate-call strings to their SELECT aliases, so
// `count(*) AS n` names the output column n.
func aggAliases(stmt *SelectStmt) map[string]string {
	m := make(map[string]string)
	for _, it := range stmt.Items {
		if it.Alias == "" || it.Expr == nil {
			continue
		}
		if f, ok := it.Expr.(*FuncExpr); ok && isAggName(f.Name) {
			m[f.String()] = it.Alias
		}
	}
	return m
}

// collectAggs gathers distinct aggregate calls from the SELECT list and
// HAVING (including the left side of an ALL comparison), in first-seen
// order.
func collectAggs(stmt *SelectStmt) []*FuncExpr {
	var out []*FuncExpr
	seen := make(map[string]bool)
	var walk func(ExprNode)
	walk = func(n ExprNode) {
		switch e := n.(type) {
		case nil:
		case *FuncExpr:
			if isAggName(e.Name) {
				if !seen[e.String()] {
					seen[e.String()] = true
					out = append(out, e)
				}
				return // aggregates don't nest
			}
			for _, a := range e.Args {
				walk(a)
			}
		case *BinaryExpr:
			walk(e.L)
			walk(e.R)
		case *UnaryExpr:
			walk(e.X)
		case *IsNullNode:
			walk(e.X)
		case *InNode:
			walk(e.X)
			for _, el := range e.List {
				walk(el)
			}
		case *CaseNode:
			walk(e.Operand)
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(e.Else)
		case *AllCompare:
			walk(e.Left)
		}
	}
	for _, it := range stmt.Items {
		if !it.Star {
			walk(it.Expr)
		}
	}
	walk(stmt.Having)
	return out
}

func containsAgg(n ExprNode) bool {
	found := false
	var walk func(ExprNode)
	walk = func(n ExprNode) {
		switch e := n.(type) {
		case nil:
		case *FuncExpr:
			if isAggName(e.Name) {
				found = true
				return
			}
			for _, a := range e.Args {
				walk(a)
			}
		case *BinaryExpr:
			walk(e.L)
			walk(e.R)
		case *UnaryExpr:
			walk(e.X)
		case *IsNullNode:
			walk(e.X)
		case *InNode:
			walk(e.X)
			for _, el := range e.List {
				walk(el)
			}
		case *CaseNode:
			walk(e.Operand)
			for _, w := range e.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(e.Else)
		case *AllCompare:
			found = true
		}
	}
	walk(n)
	return found
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}

// resolver maps a parsed identifier to a physical column name.
type resolver func(id *Ident) (string, error)

// singleResolver resolves identifiers against one source: the qualifier,
// if present, must match the binding name.
func singleResolver(binding string, schema *stream.Schema) resolver {
	return func(id *Ident) (string, error) {
		if id.Qualifier != "" && binding != "" && !strings.EqualFold(id.Qualifier, binding) {
			return "", fmt.Errorf("cql: unknown source %q (have %q)", id.Qualifier, binding)
		}
		if schema != nil {
			if _, ok := schema.Index(id.Name); !ok {
				return "", fmt.Errorf("cql: unknown column %q", id.QualifiedName())
			}
		}
		return id.Name, nil
	}
}

// namesResolver resolves against an explicit name list (planned operator
// outputs), matching qualified references by suffix.
func namesResolver(names []string) resolver {
	return func(id *Ident) (string, error) {
		// Exact (qualified) match first.
		qn := id.QualifiedName()
		for _, n := range names {
			if strings.EqualFold(n, qn) {
				return n, nil
			}
		}
		// Unqualified or suffix match.
		var hit string
		for _, n := range names {
			base := n
			if dot := strings.LastIndex(n, "."); dot >= 0 {
				base = n[dot+1:]
			}
			if strings.EqualFold(base, id.Name) {
				if hit != "" {
					return "", fmt.Errorf("cql: ambiguous column %q (matches %q and %q)", id.QualifiedName(), hit, n)
				}
				hit = n
			}
		}
		if hit == "" {
			return "", fmt.Errorf("cql: unknown column %q (have %v)", id.QualifiedName(), names)
		}
		return hit, nil
	}
}

// compileExpr lowers a parsed expression to a bound-later stream.Expr.
// aggMap, when non-nil, maps aggregate-call strings to output columns of
// an upstream WindowAgg (post-aggregation contexts).
func compileExpr(n ExprNode, res resolver, aggMap map[string]string) (stream.Expr, error) {
	switch e := n.(type) {
	case *Ident:
		name, err := res(e)
		if err != nil {
			return nil, err
		}
		return stream.NewCol(name), nil
	case *NumberLit:
		if e.IsFloat() {
			f, err := strconv.ParseFloat(e.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("cql: bad number %q: %w", e.Text, err)
			}
			return stream.NewConst(stream.Float(f)), nil
		}
		i, err := strconv.ParseInt(e.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("cql: bad number %q: %w", e.Text, err)
		}
		return stream.NewConst(stream.Int(i)), nil
	case *StringLit:
		return stream.NewConst(stream.String(e.Val)), nil
	case *BoolLit:
		return stream.NewConst(stream.Bool(e.Val)), nil
	case *NullLit:
		return stream.NewConst(stream.Null()), nil
	case *UnaryExpr:
		x, err := compileExpr(e.X, res, aggMap)
		if err != nil {
			return nil, err
		}
		if e.Op == "NOT" {
			return stream.NewNot(x), nil
		}
		return stream.NewNeg(x), nil
	case *IsNullNode:
		x, err := compileExpr(e.X, res, aggMap)
		if err != nil {
			return nil, err
		}
		return &stream.IsNullExpr{X: x, Negate: e.Negate}, nil
	case *BinaryExpr:
		l, err := compileExpr(e.L, res, aggMap)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(e.R, res, aggMap)
		if err != nil {
			return nil, err
		}
		op, err := binOp(e.Op)
		if err != nil {
			return nil, err
		}
		return stream.NewBinary(op, l, r), nil
	case *FuncExpr:
		if isAggName(e.Name) {
			if aggMap != nil {
				if col, ok := aggMap[e.String()]; ok {
					return stream.NewCol(col), nil
				}
			}
			return nil, fmt.Errorf("cql: aggregate %s not allowed in this context", e)
		}
		args := make([]stream.Expr, len(e.Args))
		for i, a := range e.Args {
			x, err := compileExpr(a, res, aggMap)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return stream.NewCall(e.Name, args...), nil
	case *InNode:
		x, err := compileExpr(e.X, res, aggMap)
		if err != nil {
			return nil, err
		}
		list := make([]stream.Expr, len(e.List))
		for i, el := range e.List {
			c, err := compileExpr(el, res, aggMap)
			if err != nil {
				return nil, err
			}
			list[i] = c
		}
		return &stream.InList{X: x, List: list, Negate: e.Negate}, nil
	case *CaseNode:
		c := &stream.CaseExpr{}
		if e.Operand != nil {
			op, err := compileExpr(e.Operand, res, aggMap)
			if err != nil {
				return nil, err
			}
			c.Operand = op
		}
		for _, w := range e.Whens {
			cond, err := compileExpr(w.Cond, res, aggMap)
			if err != nil {
				return nil, err
			}
			then, err := compileExpr(w.Then, res, aggMap)
			if err != nil {
				return nil, err
			}
			c.Whens = append(c.Whens, stream.When{Cond: cond, Then: then})
		}
		if e.Else != nil {
			el, err := compileExpr(e.Else, res, aggMap)
			if err != nil {
				return nil, err
			}
			c.Else = el
		}
		return c, nil
	case *AllCompare:
		return nil, fmt.Errorf("cql: ALL comparison only supported as the entire HAVING clause")
	default:
		return nil, fmt.Errorf("cql: cannot compile %T", n)
	}
}

func binOp(op string) (stream.BinOp, error) {
	switch op {
	case "+":
		return stream.OpAdd, nil
	case "-":
		return stream.OpSub, nil
	case "*":
		return stream.OpMul, nil
	case "/":
		return stream.OpDiv, nil
	case "=":
		return stream.OpEq, nil
	case "<>":
		return stream.OpNe, nil
	case "<":
		return stream.OpLt, nil
	case "<=":
		return stream.OpLe, nil
	case ">":
		return stream.OpGt, nil
	case ">=":
		return stream.OpGe, nil
	case "AND":
		return stream.OpAnd, nil
	case "OR":
		return stream.OpOr, nil
	default:
		return 0, fmt.Errorf("cql: unknown operator %q", op)
	}
}
