// Package wire implements the espd client/server protocol: a
// length-prefixed binary frame format carrying tuple batches, pipeline
// control messages, and backpressure acks over a plain TCP stream.
//
// Every frame is
//
//	magic(2) | type(1) | flags(1) | length(4, big-endian) | payload
//
// The payload encoding is binary by default; setting FlagJSON marks the
// payload as the JSON encoding of the same message, which keeps the
// protocol debuggable with nothing but netcat and eyeballs. Decoders
// accept both forms for every message type.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame header constants.
const (
	magic0 = 0xE5
	magic1 = 0x9D
	// HeaderLen is the fixed frame header size in bytes.
	HeaderLen = 8
	// MaxPayload bounds a single frame's payload; a peer announcing more
	// is protocol-corrupt and the connection is dropped rather than
	// letting a length field drive an allocation.
	MaxPayload = 8 << 20
)

// FlagJSON marks the payload as JSON-encoded (debug fallback).
const FlagJSON = 0x01

// Type identifies a frame's message type.
type Type uint8

// Protocol frame types.
const (
	// TypeHello opens a connection: tenant + role.
	TypeHello Type = 1
	// TypeCreate submits a pipeline spec (deployment config JSON) for a
	// tenant — the control-plane message.
	TypeCreate Type = 2
	// TypePublish delivers a batch of readings for one receptor channel.
	TypePublish Type = 3
	// TypeAdvance drives the tenant's epoch clock to a timestamp
	// (external punctuation — deterministic replay).
	TypeAdvance Type = 4
	// TypeSubscribe attaches the connection to a tenant's cleaned
	// output stream.
	TypeSubscribe Type = 5
	// TypeData carries cleaned output tuples to a subscriber.
	TypeData Type = 6
	// TypeAck acknowledges a Publish/Advance, reporting backpressure.
	TypeAck Type = 7
	// TypeError reports a failure; the connection stays usable unless
	// the peer closes it.
	TypeError Type = 8
	// TypeDrain tells a subscriber the stream is complete (graceful
	// shutdown); no further Data frames follow.
	TypeDrain Type = 9
	// TypeStats requests / carries a tenant stats snapshot (JSON).
	TypeStats Type = 10
)

func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeCreate:
		return "create"
	case TypePublish:
		return "publish"
	case TypeAdvance:
		return "advance"
	case TypeSubscribe:
		return "subscribe"
	case TypeData:
		return "data"
	case TypeAck:
		return "ack"
	case TypeError:
		return "error"
	case TypeDrain:
		return "drain"
	case TypeStats:
		return "stats"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Frame is one decoded protocol frame.
type Frame struct {
	Type    Type
	Flags   uint8
	Payload []byte
}

// JSON reports whether the payload is the JSON fallback encoding.
func (f Frame) JSON() bool { return f.Flags&FlagJSON != 0 }

// Frame decoding errors.
var (
	// ErrBadMagic means the stream is not speaking the esp protocol.
	ErrBadMagic = errors.New("wire: bad frame magic")
	// ErrTooLarge means the announced payload exceeds MaxPayload.
	ErrTooLarge = errors.New("wire: frame payload exceeds limit")
	// ErrShort means the buffer ends before the announced payload does.
	ErrShort = errors.New("wire: short frame")
)

// AppendFrame appends the encoded frame to dst and returns the extended
// slice.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, magic0, magic1, byte(f.Type), f.Flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b.
// Error messages carry the offending header fields (magic bytes, or the
// type byte and announced length) so a corrupted-in-transit stream is
// diagnosable from the error alone.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen {
		return Frame{}, 0, ErrShort
	}
	if b[0] != magic0 || b[1] != magic1 {
		return Frame{}, 0, fmt.Errorf("%w: got %#02x %#02x, want %#02x %#02x", ErrBadMagic, b[0], b[1], magic0, magic1)
	}
	n := binary.BigEndian.Uint32(b[4:8])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("%w: frame type %s (0x%02x) announces %d bytes (limit %d)",
			ErrTooLarge, Type(b[2]), b[2], n, MaxPayload)
	}
	end := HeaderLen + int(n)
	if len(b) < end {
		return Frame{}, 0, ErrShort
	}
	return Frame{Type: Type(b[2]), Flags: b[3], Payload: b[HeaderLen:end:end]}, end, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxPayload {
		return ErrTooLarge
	}
	_, err := w.Write(AppendFrame(nil, f))
	return err
}

// ReadFrame reads exactly one frame from r. The header is validated
// before the payload is allocated, so a corrupt length cannot drive a
// huge allocation. Error messages carry the offending header fields
// (magic bytes, or the type byte and announced length) so a
// corrupted-in-transit stream — a truncating proxy, a half-written
// frame — is diagnosable from the error alone.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return Frame{}, fmt.Errorf("%w: got %#02x %#02x, want %#02x %#02x", ErrBadMagic, hdr[0], hdr[1], magic0, magic1)
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("%w: frame type %s (0x%02x) announces %d bytes (limit %d)",
			ErrTooLarge, Type(hdr[2]), hdr[2], n, MaxPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("wire: frame type %s (0x%02x) truncated mid-payload (want %d bytes): %w",
			Type(hdr[2]), hdr[2], n, err)
	}
	return Frame{Type: Type(hdr[2]), Flags: hdr[3], Payload: payload}, nil
}
