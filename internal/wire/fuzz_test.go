package wire

import (
	"bytes"
	"testing"
)

// FuzzFrame throws arbitrary bytes at the full decode stack: the frame
// decoder, then every message decoder that matches the frame type. The
// invariants are (1) no panic on any input, (2) a frame that decodes
// re-encodes to the exact same bytes it was decoded from (the codec is
// canonical for framed bytes), and (3) any message that decodes from a
// binary frame round-trips through its encoder and decodes equal.
func FuzzFrame(f *testing.F) {
	// Well-formed frames of every type, a JSON fallback, and garbage.
	seed := func(fr Frame) { f.Add(AppendFrame(nil, fr)) }
	seed(Hello{Tenant: "lab", Role: "publish"}.Frame())
	seed(Create{Tenant: "lab", Spec: []byte(`{"epoch":"1s"}`)}.Frame())
	seed(Publish{Receptor: "m0", Seq: 1, Tuples: sampleTuples()}.Frame())
	seed(Publish{Receptor: "m0", Seq: 2, Tuples: sampleTuples()}.FrameJSON())
	seed(Advance{Seq: 3, Now: 1_000_000_000}.Frame())
	seed(Subscribe{Tenant: "lab", Stream: "rfid"}.Frame())
	seed(Data{Stream: "rfid", Epoch: 2_000_000_000, Tuples: sampleTuples()}.Frame())
	seed(Data{Stream: "rfid", Epoch: 2, Tuples: nil}.FrameJSON())
	seed(Ack{Seq: 4, Pending: 1, Cap: 2, Dropped: 3}.Frame())
	seed(ErrorMsg{Msg: "boom"}.Frame())
	seed(Drain{FinalEpoch: 5}.Frame())
	f.Add([]byte{})
	f.Add([]byte{magic0, magic1})
	f.Add([]byte{magic0, magic1, 3, 0, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{magic0}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if re := AppendFrame(nil, fr); !bytes.Equal(re, b[:n]) {
			t.Fatalf("frame re-encode differs:\nin  %x\nout %x", b[:n], re)
		}
		switch fr.Type {
		case TypeHello:
			if m, err := DecodeHello(fr); err == nil && !fr.JSON() {
				reDecode(t, m.Frame(), m, func(f2 Frame) (any, error) { m2, e := DecodeHello(f2); return m2, e })
			}
		case TypeCreate:
			if _, err := DecodeCreate(fr); err != nil {
				return
			}
		case TypePublish:
			if m, err := DecodePublish(fr); err == nil && !fr.JSON() {
				if re := m.Frame(); !bytes.Equal(re.Payload, fr.Payload) {
					// Payload may legally differ only by trailing junk the
					// tuple decoder ignored; re-decode must agree instead.
					m2, err := DecodePublish(re)
					if err != nil {
						t.Fatalf("publish re-decode: %v", err)
					}
					if m2.Receptor != m.Receptor || m2.Seq != m.Seq || len(m2.Tuples) != len(m.Tuples) {
						t.Fatalf("publish round trip drifted: %+v vs %+v", m, m2)
					}
				}
			}
		case TypeAdvance:
			if m, err := DecodeAdvance(fr); err == nil && !fr.JSON() {
				if m2, err := DecodeAdvance(m.Frame()); err != nil || m2 != m {
					t.Fatalf("advance round trip: %+v vs %+v (%v)", m, m2, err)
				}
			}
		case TypeSubscribe:
			if m, err := DecodeSubscribe(fr); err == nil && !fr.JSON() {
				if m2, err := DecodeSubscribe(m.Frame()); err != nil || m2 != m {
					t.Fatalf("subscribe round trip: %+v vs %+v (%v)", m, m2, err)
				}
			}
		case TypeData:
			_, _ = DecodeData(fr)
		case TypeAck:
			if m, err := DecodeAck(fr); err == nil && !fr.JSON() {
				if m2, err := DecodeAck(m.Frame()); err != nil || m2 != m {
					t.Fatalf("ack round trip: %+v vs %+v (%v)", m, m2, err)
				}
			}
		case TypeError:
			_, _ = DecodeError(fr)
		case TypeDrain:
			_, _ = DecodeDrain(fr)
		}
	})
}

func reDecode(t *testing.T, f Frame, want any, dec func(Frame) (any, error)) {
	t.Helper()
	got, err := dec(f)
	if err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if got != want {
		t.Fatalf("round trip drifted: %+v vs %+v", want, got)
	}
}
