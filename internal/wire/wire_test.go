package wire

import (
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"esp/internal/stream"
)

func sampleTuples() []stream.Tuple {
	return []stream.Tuple{
		{Ts: time.Unix(3, 141592653).UTC(), Values: []stream.Value{
			stream.String("r0"), stream.String("shelf"), stream.Int(-42),
			stream.Float(math.Pi), stream.Bool(true), stream.Null(),
			stream.Time(time.Unix(99, 7).UTC()),
		}},
		{Ts: time.Unix(4, 0).UTC(), Values: nil},
		{Ts: time.Unix(5, 5).UTC(), Values: []stream.Value{stream.String("")}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Payload: []byte("x")},
		{Type: TypeData, Flags: FlagJSON, Payload: []byte(`{"stream":"rfid"}`)},
		{Type: TypeDrain, Payload: nil},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{0xde, 0xad, 0, 0, 0, 0, 0, 0}); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	huge := AppendFrame(nil, Frame{Type: TypeData})
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(huge); err != ErrTooLarge {
		t.Errorf("huge length: %v", err)
	}
	ok := AppendFrame(nil, Frame{Type: TypeData, Payload: []byte("hello")})
	if _, _, err := DecodeFrame(ok[:len(ok)-1]); err != ErrShort {
		t.Errorf("truncated: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(ok[:len(ok)-1])); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated stream: %v", err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	want := sampleTuples()
	enc := AppendTuples(nil, want)
	got, n, err := DecodeTuples(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
	// Canonical: re-encoding the decoded tuples is byte-identical.
	if re := AppendTuples(nil, got); !bytes.Equal(re, enc) {
		t.Fatal("re-encoding is not canonical")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	pub := Publish{Receptor: "mote-17", Seq: 9, Tuples: sampleTuples()}
	for name, f := range map[string]Frame{"binary": pub.Frame(), "json": pub.FrameJSON()} {
		got, err := DecodePublish(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Receptor != pub.Receptor || got.Seq != pub.Seq || !reflect.DeepEqual(got.Tuples, pub.Tuples) {
			t.Fatalf("%s publish mismatch: %+v", name, got)
		}
	}

	data := Data{Stream: "rfid", Epoch: 123456789, Tuples: sampleTuples()}
	for name, f := range map[string]Frame{"binary": data.Frame(), "json": data.FrameJSON()} {
		got, err := DecodeData(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Stream != data.Stream || got.Epoch != data.Epoch || !reflect.DeepEqual(got.Tuples, data.Tuples) {
			t.Fatalf("%s data mismatch: %+v", name, got)
		}
	}

	hello := Hello{Tenant: "lab", Role: "publish"}
	if got, err := DecodeHello(hello.Frame()); err != nil || got != hello {
		t.Fatalf("hello: %+v, %v", got, err)
	}
	create := Create{Tenant: "lab", Spec: []byte(`{"epoch":"1s"}`)}
	if got, err := DecodeCreate(create.Frame()); err != nil || got.Tenant != create.Tenant || !bytes.Equal(got.Spec, create.Spec) {
		t.Fatalf("create: %+v, %v", got, err)
	}
	adv := Advance{Seq: 3, Now: -62135596800000000}
	if got, err := DecodeAdvance(adv.Frame()); err != nil || got != adv {
		t.Fatalf("advance: %+v, %v", got, err)
	}
	sub := Subscribe{Tenant: "lab", Stream: "virtualize"}
	if got, err := DecodeSubscribe(sub.Frame()); err != nil || got != sub {
		t.Fatalf("subscribe: %+v, %v", got, err)
	}
	ack := Ack{Seq: 7, Pending: 12, Cap: 1024, Dropped: 3}
	if got, err := DecodeAck(ack.Frame()); err != nil || got != ack {
		t.Fatalf("ack: %+v, %v", got, err)
	}
	em := ErrorMsg{Msg: "no such tenant"}
	if got, err := DecodeError(em.Frame()); err != nil || got != em {
		t.Fatalf("error: %+v, %v", got, err)
	}
	dr := Drain{FinalEpoch: 42}
	if got, err := DecodeDrain(dr.Frame()); err != nil || got != dr {
		t.Fatalf("drain: %+v, %v", got, err)
	}
}

// TestDecodeTuplesHostileCounts pins the allocation guards: length and
// count fields larger than the buffer must error, not allocate.
func TestDecodeTuplesHostileCounts(t *testing.T) {
	// Tuple count 2^60 with no data behind it.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, _, err := DecodeTuples(hostile); err == nil {
		t.Fatal("hostile tuple count decoded")
	}
	// String length past the end of the buffer.
	enc := AppendTuple(nil, stream.Tuple{Ts: time.Unix(0, 0), Values: []stream.Value{stream.String("abcdef")}})
	if _, _, err := decodeTuple(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated string decoded")
	}
}
