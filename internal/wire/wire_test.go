package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"esp/internal/stream"
)

func sampleTuples() []stream.Tuple {
	return []stream.Tuple{
		{Ts: time.Unix(3, 141592653).UTC(), Values: []stream.Value{
			stream.String("r0"), stream.String("shelf"), stream.Int(-42),
			stream.Float(math.Pi), stream.Bool(true), stream.Null(),
			stream.Time(time.Unix(99, 7).UTC()),
		}},
		{Ts: time.Unix(4, 0).UTC(), Values: nil},
		{Ts: time.Unix(5, 5).UTC(), Values: []stream.Value{stream.String("")}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypeHello, Payload: []byte("x")},
		{Type: TypeData, Flags: FlagJSON, Payload: []byte(`{"stream":"rfid"}`)},
		{Type: TypeDrain, Payload: nil},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Flags != want.Flags || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("trailing read = %v, want EOF", err)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{0xde, 0xad, 0, 0, 0, 0, 0, 0}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	huge := AppendFrame(nil, Frame{Type: TypeData})
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge length: %v", err)
	}
	ok := AppendFrame(nil, Frame{Type: TypeData, Payload: []byte("hello")})
	if _, _, err := DecodeFrame(ok[:len(ok)-1]); err != ErrShort {
		t.Errorf("truncated: %v", err)
	}
	if _, err := ReadFrame(bytes.NewReader(ok[:len(ok)-1])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated stream: %v", err)
	}
}

// TestFrameErrorDiagnostics pins the decoder's error messages to carry
// the offending frame's type byte and announced length — what makes a
// chaos-proxy truncation diagnosable from the error alone.
func TestFrameErrorDiagnostics(t *testing.T) {
	huge := AppendFrame(nil, Frame{Type: TypePublish})
	huge[4], huge[5], huge[6], huge[7] = 0xff, 0xff, 0xff, 0xff
	_, _, err := DecodeFrame(huge)
	for _, want := range []string{"publish", "0x03", "4294967295"} {
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Errorf("oversize error %q missing %q", err, want)
		}
	}
	ok := AppendFrame(nil, Frame{Type: TypeData, Payload: []byte("hello")})
	_, rerr := ReadFrame(bytes.NewReader(ok[:len(ok)-2]))
	for _, want := range []string{"data", "0x06", "want 5 bytes"} {
		if rerr == nil || !strings.Contains(rerr.Error(), want) {
			t.Errorf("truncation error %q missing %q", rerr, want)
		}
	}
	_, merr := ReadFrame(bytes.NewReader([]byte{0xde, 0xad, 0, 0, 0, 0, 0, 0}))
	if merr == nil || !strings.Contains(merr.Error(), "0xde") {
		t.Errorf("magic error %q missing offending byte", merr)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	want := sampleTuples()
	enc := AppendTuples(nil, want)
	got, n, err := DecodeTuples(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %v\nwant %v", got, want)
	}
	// Canonical: re-encoding the decoded tuples is byte-identical.
	if re := AppendTuples(nil, got); !bytes.Equal(re, enc) {
		t.Fatal("re-encoding is not canonical")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	pub := Publish{Receptor: "mote-17", Seq: 9, Tuples: sampleTuples()}
	for name, f := range map[string]Frame{"binary": pub.Frame(), "json": pub.FrameJSON()} {
		got, err := DecodePublish(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Receptor != pub.Receptor || got.Seq != pub.Seq || !reflect.DeepEqual(got.Tuples, pub.Tuples) {
			t.Fatalf("%s publish mismatch: %+v", name, got)
		}
	}

	data := Data{Stream: "rfid", Epoch: 123456789, Tuples: sampleTuples()}
	for name, f := range map[string]Frame{"binary": data.Frame(), "json": data.FrameJSON()} {
		got, err := DecodeData(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Stream != data.Stream || got.Epoch != data.Epoch || !reflect.DeepEqual(got.Tuples, data.Tuples) {
			t.Fatalf("%s data mismatch: %+v", name, got)
		}
	}

	hello := Hello{Tenant: "lab", Role: "publish"}
	if got, err := DecodeHello(hello.Frame()); err != nil || got != hello {
		t.Fatalf("hello: %+v, %v", got, err)
	}
	create := Create{Tenant: "lab", Spec: []byte(`{"epoch":"1s"}`)}
	if got, err := DecodeCreate(create.Frame()); err != nil || got.Tenant != create.Tenant || !bytes.Equal(got.Spec, create.Spec) {
		t.Fatalf("create: %+v, %v", got, err)
	}
	adv := Advance{Seq: 3, Now: -62135596800000000}
	if got, err := DecodeAdvance(adv.Frame()); err != nil || got != adv {
		t.Fatalf("advance: %+v, %v", got, err)
	}
	sub := Subscribe{Tenant: "lab", Stream: "virtualize"}
	if got, err := DecodeSubscribe(sub.Frame()); err != nil || got != sub {
		t.Fatalf("subscribe: %+v, %v", got, err)
	}
	ack := Ack{Seq: 7, Pending: 12, Cap: 1024, Dropped: 3}
	if got, err := DecodeAck(ack.Frame()); err != nil || got != ack {
		t.Fatalf("ack: %+v, %v", got, err)
	}
	em := ErrorMsg{Msg: "no such tenant"}
	if got, err := DecodeError(em.Frame()); err != nil || got != em {
		t.Fatalf("error: %+v, %v", got, err)
	}
	dr := Drain{FinalEpoch: 42}
	if got, err := DecodeDrain(dr.Frame()); err != nil || got != dr {
		t.Fatalf("drain: %+v, %v", got, err)
	}
}

// TestSessionFieldRoundTrips covers the resume extensions: session
// hellos, resume subscribes, and epoch-carrying acks must round-trip in
// both encodings, and the session-less forms must stay byte-compatible
// with the pre-session protocol.
func TestSessionFieldRoundTrips(t *testing.T) {
	jsonFrame := func(m any, typ Type) Frame {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return Frame{Type: typ, Flags: FlagJSON, Payload: b}
	}

	hello := Hello{Tenant: "lab", Role: "pub", Session: "pub-7", ResumeEpoch: 123456789}
	for name, f := range map[string]Frame{"binary": hello.Frame(), "json": jsonFrame(hello, TypeHello)} {
		if got, err := DecodeHello(f); err != nil || got != hello {
			t.Fatalf("%s session hello: %+v, %v", name, got, err)
		}
	}
	// A session-less hello encodes exactly as the pre-session protocol
	// did: two strings, nothing trailing.
	plain := Hello{Tenant: "lab", Role: "pub"}
	want := appendString(nil, "lab")
	want = appendString(want, "pub")
	if !bytes.Equal(plain.Frame().Payload, want) {
		t.Errorf("plain hello payload = %x, want pre-session %x", plain.Frame().Payload, want)
	}

	sub := Subscribe{Tenant: "lab", Stream: "mote", FromEpoch: 42}
	for name, f := range map[string]Frame{"binary": sub.Frame(), "json": jsonFrame(sub, TypeSubscribe)} {
		if got, err := DecodeSubscribe(f); err != nil || got != sub {
			t.Fatalf("%s resume subscribe: %+v, %v", name, got, err)
		}
	}

	ack := Ack{Seq: 9, Pending: 1, Cap: 2, Dropped: 3, Epoch: 77}
	for name, f := range map[string]Frame{"binary": ack.Frame(), "json": jsonFrame(ack, TypeAck)} {
		if got, err := DecodeAck(f); err != nil || got != ack {
			t.Fatalf("%s epoch ack: %+v, %v", name, got, err)
		}
	}
	// Truncated session suffix is an error, not a silent fallback.
	f := hello.Frame()
	if _, err := DecodeHello(Frame{Type: TypeHello, Payload: f.Payload[:len(f.Payload)-3]}); err == nil {
		t.Error("truncated session hello decoded")
	}
}

// TestDecodeTuplesHostileCounts pins the allocation guards: length and
// count fields larger than the buffer must error, not allocate.
func TestDecodeTuplesHostileCounts(t *testing.T) {
	// Tuple count 2^60 with no data behind it.
	hostile := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, _, err := DecodeTuples(hostile); err == nil {
		t.Fatal("hostile tuple count decoded")
	}
	// String length past the end of the buffer.
	enc := AppendTuple(nil, stream.Tuple{Ts: time.Unix(0, 0), Values: []stream.Value{stream.String("abcdef")}})
	if _, _, err := decodeTuple(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated string decoded")
	}
}

// TestTraceFieldRoundTrips covers the trace-context extension: publish,
// advance, and data frames carry an optional trailing trace ID in both
// encodings, and the untraced forms stay byte-compatible with the
// pre-tracing protocol.
func TestTraceFieldRoundTrips(t *testing.T) {
	pub := Publish{Receptor: "mote-17", Seq: 9, Tuples: sampleTuples(), TraceID: 0xfeedface}
	for name, f := range map[string]Frame{"binary": pub.Frame(), "json": pub.FrameJSON()} {
		got, err := DecodePublish(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.TraceID != pub.TraceID || got.Receptor != pub.Receptor || got.Seq != pub.Seq || !reflect.DeepEqual(got.Tuples, pub.Tuples) {
			t.Fatalf("%s traced publish mismatch: %+v", name, got)
		}
	}

	adv := Advance{Seq: 3, Now: 123456789, TraceID: 0xabc}
	if got, err := DecodeAdvance(adv.Frame()); err != nil || got != adv {
		t.Fatalf("traced advance: %+v, %v", got, err)
	}

	data := Data{Stream: "rfid", Epoch: 777, Tuples: sampleTuples(), TraceID: 0xdead}
	for name, f := range map[string]Frame{"binary": data.Frame(), "json": data.FrameJSON()} {
		got, err := DecodeData(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.TraceID != data.TraceID || got.Stream != data.Stream || got.Epoch != data.Epoch || !reflect.DeepEqual(got.Tuples, data.Tuples) {
			t.Fatalf("%s traced data mismatch: %+v", name, got)
		}
	}

	// Untraced frames encode exactly as the pre-tracing protocol did:
	// nothing trailing.
	plainPub := Publish{Receptor: "r0", Seq: 1, Tuples: sampleTuples()}
	want := appendString(nil, "r0")
	want = binary.BigEndian.AppendUint64(want, 1)
	want = AppendTuples(want, plainPub.Tuples)
	if !bytes.Equal(plainPub.Frame().Payload, want) {
		t.Error("untraced publish payload not byte-compatible with pre-tracing encoding")
	}
	plainAdv := Advance{Seq: 2, Now: 99}
	if n := len(plainAdv.Frame().Payload); n != 16 {
		t.Errorf("untraced advance payload = %d bytes, want 16", n)
	}
	plainData := Data{Stream: "s", Epoch: 5, Tuples: nil}
	wantData := appendString(nil, "s")
	wantData = binary.BigEndian.AppendUint64(wantData, 5)
	wantData = AppendTuples(wantData, nil)
	if !bytes.Equal(plainData.Frame().Payload, wantData) {
		t.Error("untraced data payload not byte-compatible with pre-tracing encoding")
	}

	// A traced frame's payload is the untraced payload plus exactly
	// eight trailing bytes — the shape an old decoder would skip.
	traced := pub.Frame().Payload
	untraced := plain2(pub).Frame().Payload
	if len(traced) != len(untraced)+8 || !bytes.Equal(traced[:len(untraced)], untraced) {
		t.Fatal("trace suffix is not a pure trailing extension")
	}
}

// plain2 strips the trace ID — the view an untraced consumer keeps.
func plain2(p Publish) Publish {
	p.TraceID = 0
	return p
}
