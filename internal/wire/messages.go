package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"esp/internal/stream"
)

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString decodes a length-prefixed string from the front of b.
func decodeString(b []byte) (string, int, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", 0, ErrShort
	}
	return string(b[w : w+int(n)]), w + int(n), nil
}

// Hello opens a connection, naming the tenant the connection serves and
// the role it plays ("publish", "subscribe", or "control").
//
// Session, when non-empty, binds the connection to a client-chosen
// session: the server tracks the session's last applied publish seq
// across connections, so a client that reconnects and re-sends an
// unacked publish under the same session has it deduplicated rather
// than double-applied. ResumeEpoch is the client's last acked epoch
// (UnixNano, 0 = none), re-announced on reconnect for the server's
// logs and telemetry. The hello Ack replies with the session's last
// applied seq (Ack.Seq) and the tenant's last committed epoch
// (Ack.Epoch) — everything the client needs to decide what to re-send.
type Hello struct {
	Tenant      string `json:"tenant"`
	Role        string `json:"role"`
	Session     string `json:"session,omitempty"`
	ResumeEpoch int64  `json:"resume_epoch,omitempty"`
}

// Frame encodes the message binary. The session fields are appended
// only when a session is named, so a session-less hello is byte-
// compatible with the pre-session protocol.
func (m Hello) Frame() Frame {
	p := appendString(nil, m.Tenant)
	p = appendString(p, m.Role)
	if m.Session != "" || m.ResumeEpoch != 0 {
		p = appendString(p, m.Session)
		p = binary.BigEndian.AppendUint64(p, uint64(m.ResumeEpoch))
	}
	return Frame{Type: TypeHello, Payload: p}
}

// DecodeHello decodes a hello frame (binary or JSON). The session
// fields are optional trailing bytes: frames from pre-session encoders
// decode with an empty session.
func DecodeHello(f Frame) (Hello, error) {
	var m Hello
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	t, w, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	r, w2, err := decodeString(f.Payload[w:])
	if err != nil {
		return m, err
	}
	m.Tenant, m.Role = t, r
	if rest := f.Payload[w+w2:]; len(rest) > 0 {
		s, w3, err := decodeString(rest)
		if err != nil {
			return m, err
		}
		if len(rest[w3:]) < 8 {
			return m, ErrShort
		}
		m.Session = s
		m.ResumeEpoch = int64(binary.BigEndian.Uint64(rest[w3:]))
	}
	return m, nil
}

// Create submits a pipeline for a tenant. Spec is a deployment config
// document (the same JSON espclean -config accepts, minus receptors —
// the server provisions receptor channels from the Receptors list).
type Create struct {
	Tenant string `json:"tenant"`
	// Spec is the deployment spec JSON (epoch, schema, groups,
	// pipelines, virtualize).
	Spec []byte `json:"spec"`
}

// Frame encodes the message binary.
func (m Create) Frame() Frame {
	p := appendString(nil, m.Tenant)
	p = binary.AppendUvarint(p, uint64(len(m.Spec)))
	p = append(p, m.Spec...)
	return Frame{Type: TypeCreate, Payload: p}
}

// DecodeCreate decodes a create frame (binary or JSON).
func DecodeCreate(f Frame) (Create, error) {
	var m Create
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	t, w, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	rest := f.Payload[w:]
	n, vw := binary.Uvarint(rest)
	if vw <= 0 || n > uint64(len(rest)-vw) {
		return m, ErrShort
	}
	m.Tenant = t
	m.Spec = append([]byte(nil), rest[vw:vw+int(n)]...)
	return m, nil
}

// Publish delivers a batch of raw readings for one receptor channel.
// Seq identifies the frame for its Ack.
//
// TraceID, when non-zero, marks the request as traced: the server
// propagates the ID through apply, commit, and delivery so one request
// is observable end to end. It rides as optional trailing bytes, so an
// untraced publish is byte-compatible with the pre-tracing protocol.
type Publish struct {
	Receptor string         `json:"receptor"`
	Seq      uint64         `json:"seq"`
	Tuples   []stream.Tuple `json:"-"`
	TraceID  uint64         `json:"trace_id,omitempty"`
}

type jsonPublish struct {
	Receptor string      `json:"receptor"`
	Seq      uint64      `json:"seq"`
	Tuples   []jsonTuple `json:"tuples"`
	TraceID  uint64      `json:"trace_id,omitempty"`
}

// Frame encodes the message binary. TraceID is appended only when set.
func (m Publish) Frame() Frame {
	p := appendString(nil, m.Receptor)
	p = binary.BigEndian.AppendUint64(p, m.Seq)
	p = AppendTuples(p, m.Tuples)
	if m.TraceID != 0 {
		p = binary.BigEndian.AppendUint64(p, m.TraceID)
	}
	return Frame{Type: TypePublish, Payload: p}
}

// FrameJSON encodes the message with the JSON debug fallback.
func (m Publish) FrameJSON() Frame {
	b, _ := json.Marshal(jsonPublish{Receptor: m.Receptor, Seq: m.Seq, Tuples: toJSONTuples(m.Tuples), TraceID: m.TraceID})
	return Frame{Type: TypePublish, Flags: FlagJSON, Payload: b}
}

// DecodePublish decodes a publish frame (binary or JSON).
func DecodePublish(f Frame) (Publish, error) {
	var m Publish
	if f.JSON() {
		var jm jsonPublish
		if err := json.Unmarshal(f.Payload, &jm); err != nil {
			return m, err
		}
		ts, err := fromJSONTuples(jm.Tuples)
		if err != nil {
			return m, err
		}
		return Publish{Receptor: jm.Receptor, Seq: jm.Seq, Tuples: ts, TraceID: jm.TraceID}, nil
	}
	r, w, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	rest := f.Payload[w:]
	if len(rest) < 8 {
		return m, ErrShort
	}
	seq := binary.BigEndian.Uint64(rest)
	ts, n, err := DecodeTuples(rest[8:])
	if err != nil {
		return m, err
	}
	var trace uint64
	if tail := rest[8+n:]; len(tail) >= 8 {
		trace = binary.BigEndian.Uint64(tail)
	}
	return Publish{Receptor: r, Seq: seq, Tuples: ts, TraceID: trace}, nil
}

// Advance drives the tenant's epoch clock to Now (UnixNano): the server
// punctuates every granule boundary up to and including it. Seq
// identifies the frame for its Ack, which is sent only after every
// boundary has committed — the client-visible epoch barrier.
//
// TraceID, when non-zero, traces the epoch step this advance triggers
// (see Publish.TraceID). Optional trailing bytes, byte-compatible with
// the pre-tracing protocol when unset.
type Advance struct {
	Seq     uint64 `json:"seq"`
	Now     int64  `json:"now"`
	TraceID uint64 `json:"trace_id,omitempty"`
}

// Frame encodes the message binary. TraceID is appended only when set.
func (m Advance) Frame() Frame {
	p := binary.BigEndian.AppendUint64(nil, m.Seq)
	p = binary.BigEndian.AppendUint64(p, uint64(m.Now))
	if m.TraceID != 0 {
		p = binary.BigEndian.AppendUint64(p, m.TraceID)
	}
	return Frame{Type: TypeAdvance, Payload: p}
}

// DecodeAdvance decodes an advance frame (binary or JSON).
func DecodeAdvance(f Frame) (Advance, error) {
	var m Advance
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	if len(f.Payload) < 16 {
		return m, ErrShort
	}
	m.Seq = binary.BigEndian.Uint64(f.Payload)
	m.Now = int64(binary.BigEndian.Uint64(f.Payload[8:]))
	if len(f.Payload) >= 24 {
		m.TraceID = binary.BigEndian.Uint64(f.Payload[16:])
	}
	return m, nil
}

// Subscribe attaches the connection to one of a tenant's cleaned output
// streams: a receptor type name, or "virtualize" for the cross-type
// stream.
//
// FromEpoch, when non-zero, resumes a dropped subscription: the server
// first replays every committed epoch strictly after FromEpoch
// (UnixNano) — from its in-memory retention ring or the WAL archive
// segments — before attaching the connection live, so a reconnecting
// subscriber sees every epoch exactly once.
type Subscribe struct {
	Tenant    string `json:"tenant"`
	Stream    string `json:"stream"`
	FromEpoch int64  `json:"from_epoch,omitempty"`
}

// Frame encodes the message binary. FromEpoch is appended only when
// set, so a plain subscribe is byte-compatible with the pre-resume
// protocol.
func (m Subscribe) Frame() Frame {
	p := appendString(nil, m.Tenant)
	p = appendString(p, m.Stream)
	if m.FromEpoch != 0 {
		p = binary.BigEndian.AppendUint64(p, uint64(m.FromEpoch))
	}
	return Frame{Type: TypeSubscribe, Payload: p}
}

// DecodeSubscribe decodes a subscribe frame (binary or JSON).
func DecodeSubscribe(f Frame) (Subscribe, error) {
	var m Subscribe
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	t, w, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	s, w2, err := decodeString(f.Payload[w:])
	if err != nil {
		return m, err
	}
	m.Tenant, m.Stream = t, s
	if rest := f.Payload[w+w2:]; len(rest) > 0 {
		if len(rest) < 8 {
			return m, ErrShort
		}
		m.FromEpoch = int64(binary.BigEndian.Uint64(rest))
	}
	return m, nil
}

// Data carries one epoch's cleaned output tuples for a subscribed
// stream. Epoch is the punctuation boundary (UnixNano) that released
// them.
//
// TraceID, when non-zero, is the exemplar trace for the epoch that
// produced this frame — the ID of a traced publish (or advance) that
// fed the commit — closing the loop from client publish to subscriber
// delivery. Optional trailing bytes, byte-compatible with the
// pre-tracing protocol when unset.
type Data struct {
	Stream  string         `json:"stream"`
	Epoch   int64          `json:"epoch"`
	Tuples  []stream.Tuple `json:"-"`
	TraceID uint64         `json:"trace_id,omitempty"`
}

type jsonData struct {
	Stream  string      `json:"stream"`
	Epoch   int64       `json:"epoch"`
	Tuples  []jsonTuple `json:"tuples"`
	TraceID uint64      `json:"trace_id,omitempty"`
}

// Frame encodes the message binary. TraceID is appended only when set.
func (m Data) Frame() Frame {
	p := appendString(nil, m.Stream)
	p = binary.BigEndian.AppendUint64(p, uint64(m.Epoch))
	p = AppendTuples(p, m.Tuples)
	if m.TraceID != 0 {
		p = binary.BigEndian.AppendUint64(p, m.TraceID)
	}
	return Frame{Type: TypeData, Payload: p}
}

// FrameJSON encodes the message with the JSON debug fallback.
func (m Data) FrameJSON() Frame {
	b, _ := json.Marshal(jsonData{Stream: m.Stream, Epoch: m.Epoch, Tuples: toJSONTuples(m.Tuples), TraceID: m.TraceID})
	return Frame{Type: TypeData, Flags: FlagJSON, Payload: b}
}

// DecodeData decodes a data frame (binary or JSON).
func DecodeData(f Frame) (Data, error) {
	var m Data
	if f.JSON() {
		var jm jsonData
		if err := json.Unmarshal(f.Payload, &jm); err != nil {
			return m, err
		}
		ts, err := fromJSONTuples(jm.Tuples)
		if err != nil {
			return m, err
		}
		return Data{Stream: jm.Stream, Epoch: jm.Epoch, Tuples: ts, TraceID: jm.TraceID}, nil
	}
	s, w, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	rest := f.Payload[w:]
	if len(rest) < 8 {
		return m, ErrShort
	}
	epoch := int64(binary.BigEndian.Uint64(rest))
	ts, n, err := DecodeTuples(rest[8:])
	if err != nil {
		return m, err
	}
	var trace uint64
	if tail := rest[8+n:]; len(tail) >= 8 {
		trace = binary.BigEndian.Uint64(tail)
	}
	return Data{Stream: s, Epoch: epoch, Tuples: ts, TraceID: trace}, nil
}

// Ack acknowledges a Publish or Advance. Pending/Cap report the
// receptor channel's backlog after the operation — the client's
// backpressure signal — and Dropped the channel's lifetime eviction
// count.
//
// Epoch, when non-zero, carries the tenant's last committed epoch
// boundary (UnixNano). A hello Ack always sets it (alongside Seq = the
// session's last applied publish seq), which is how a reconnecting
// client learns what the server already has.
type Ack struct {
	Seq     uint64 `json:"seq"`
	Pending int64  `json:"pending"`
	Cap     int64  `json:"cap"`
	Dropped int64  `json:"dropped"`
	Epoch   int64  `json:"epoch,omitempty"`
}

// Frame encodes the message binary. Epoch is appended only when set,
// so a plain ack is byte-compatible with the pre-session protocol.
func (m Ack) Frame() Frame {
	p := binary.BigEndian.AppendUint64(nil, m.Seq)
	p = binary.BigEndian.AppendUint64(p, uint64(m.Pending))
	p = binary.BigEndian.AppendUint64(p, uint64(m.Cap))
	p = binary.BigEndian.AppendUint64(p, uint64(m.Dropped))
	if m.Epoch != 0 {
		p = binary.BigEndian.AppendUint64(p, uint64(m.Epoch))
	}
	return Frame{Type: TypeAck, Payload: p}
}

// DecodeAck decodes an ack frame (binary or JSON).
func DecodeAck(f Frame) (Ack, error) {
	var m Ack
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	if len(f.Payload) < 32 {
		return m, ErrShort
	}
	m.Seq = binary.BigEndian.Uint64(f.Payload)
	m.Pending = int64(binary.BigEndian.Uint64(f.Payload[8:]))
	m.Cap = int64(binary.BigEndian.Uint64(f.Payload[16:]))
	m.Dropped = int64(binary.BigEndian.Uint64(f.Payload[24:]))
	if len(f.Payload) >= 40 {
		m.Epoch = int64(binary.BigEndian.Uint64(f.Payload[32:]))
	}
	return m, nil
}

// ErrorMsg reports a failure to the peer.
type ErrorMsg struct {
	Msg string `json:"msg"`
}

// Frame encodes the message binary.
func (m ErrorMsg) Frame() Frame {
	return Frame{Type: TypeError, Payload: appendString(nil, m.Msg)}
}

// DecodeError decodes an error frame (binary or JSON).
func DecodeError(f Frame) (ErrorMsg, error) {
	var m ErrorMsg
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	s, _, err := decodeString(f.Payload)
	if err != nil {
		return m, err
	}
	m.Msg = s
	return m, nil
}

// Errorf builds an error frame from a format string.
func Errorf(format string, args ...any) Frame {
	return ErrorMsg{Msg: fmt.Sprintf(format, args...)}.Frame()
}

// Drain tells a subscriber the stream is complete; the payload carries
// the final committed epoch (UnixNano), 0 if none.
type Drain struct {
	FinalEpoch int64 `json:"final_epoch"`
}

// Frame encodes the message binary.
func (m Drain) Frame() Frame {
	return Frame{Type: TypeDrain, Payload: binary.BigEndian.AppendUint64(nil, uint64(m.FinalEpoch))}
}

// DecodeDrain decodes a drain frame (binary or JSON).
func DecodeDrain(f Frame) (Drain, error) {
	var m Drain
	if f.JSON() {
		return m, json.Unmarshal(f.Payload, &m)
	}
	if len(f.Payload) < 8 {
		return m, ErrShort
	}
	m.FinalEpoch = int64(binary.BigEndian.Uint64(f.Payload))
	return m, nil
}
