package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"esp/internal/stream"
)

// Tuple encoding: each tuple is
//
//	ts(8, UnixNano big-endian) | nvals(uvarint) | value...
//
// and each value is a kind byte followed by kind-specific bytes:
//
//	null              (nothing)
//	bool              1 byte, 0/1
//	int               8 bytes big-endian two's-complement
//	float             8 bytes IEEE-754 big-endian
//	string            uvarint length | bytes
//	time              8 bytes UnixNano big-endian
//
// A tuple list is ntuples(uvarint) | tuple... . The encoding is
// self-describing (no schema needed to decode) and canonical: equal
// tuples encode to equal bytes, which the serving oracle relies on when
// fingerprinting output streams.

// appendValue appends the canonical encoding of v.
func appendValue(dst []byte, v stream.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case stream.KindNull:
	case stream.KindBool:
		if v.AsBool() {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case stream.KindInt:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.AsInt()))
	case stream.KindFloat:
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case stream.KindString:
		s := v.AsString()
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	case stream.KindTime:
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.AsTime().UnixNano()))
	}
	return dst
}

// decodeValue decodes one value from b, returning it and the bytes
// consumed.
func decodeValue(b []byte) (stream.Value, int, error) {
	if len(b) < 1 {
		return stream.Value{}, 0, ErrShort
	}
	kind := stream.Kind(b[0])
	rest := b[1:]
	switch kind {
	case stream.KindNull:
		return stream.Null(), 1, nil
	case stream.KindBool:
		if len(rest) < 1 {
			return stream.Value{}, 0, ErrShort
		}
		return stream.Bool(rest[0] != 0), 2, nil
	case stream.KindInt:
		if len(rest) < 8 {
			return stream.Value{}, 0, ErrShort
		}
		return stream.Int(int64(binary.BigEndian.Uint64(rest))), 9, nil
	case stream.KindFloat:
		if len(rest) < 8 {
			return stream.Value{}, 0, ErrShort
		}
		return stream.Float(math.Float64frombits(binary.BigEndian.Uint64(rest))), 9, nil
	case stream.KindString:
		n, w := binary.Uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			return stream.Value{}, 0, ErrShort
		}
		return stream.String(string(rest[w : w+int(n)])), 1 + w + int(n), nil
	case stream.KindTime:
		if len(rest) < 8 {
			return stream.Value{}, 0, ErrShort
		}
		ns := int64(binary.BigEndian.Uint64(rest))
		return stream.Time(time.Unix(0, ns).UTC()), 9, nil
	default:
		return stream.Value{}, 0, fmt.Errorf("wire: unknown value kind %d", kind)
	}
}

// AppendTuple appends the canonical encoding of t.
func AppendTuple(dst []byte, t stream.Tuple) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(t.Ts.UnixNano()))
	dst = binary.AppendUvarint(dst, uint64(len(t.Values)))
	for _, v := range t.Values {
		dst = appendValue(dst, v)
	}
	return dst
}

// decodeTuple decodes one tuple from b, returning it and the bytes
// consumed.
func decodeTuple(b []byte) (stream.Tuple, int, error) {
	if len(b) < 8 {
		return stream.Tuple{}, 0, ErrShort
	}
	ts := time.Unix(0, int64(binary.BigEndian.Uint64(b))).UTC()
	off := 8
	n, w := binary.Uvarint(b[off:])
	if w <= 0 {
		return stream.Tuple{}, 0, ErrShort
	}
	off += w
	// Each value needs at least its kind byte, so n > len caps malformed
	// counts before allocating.
	if n > uint64(len(b)-off) {
		return stream.Tuple{}, 0, ErrShort
	}
	if n == 0 {
		return stream.Tuple{Ts: ts}, off, nil
	}
	vals := make([]stream.Value, 0, n)
	for i := uint64(0); i < n; i++ {
		v, w, err := decodeValue(b[off:])
		if err != nil {
			return stream.Tuple{}, 0, err
		}
		vals = append(vals, v)
		off += w
	}
	return stream.Tuple{Ts: ts, Values: vals}, off, nil
}

// AppendTuples appends a counted tuple list.
func AppendTuples(dst []byte, ts []stream.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ts)))
	for _, t := range ts {
		dst = AppendTuple(dst, t)
	}
	return dst
}

// DecodeTuples decodes a counted tuple list from the front of b,
// returning the tuples and the bytes consumed.
func DecodeTuples(b []byte) ([]stream.Tuple, int, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, 0, ErrShort
	}
	off := w
	// A tuple encodes to >= 9 bytes, bounding a hostile count.
	if n > uint64(len(b))/9+1 {
		return nil, 0, ErrShort
	}
	out := make([]stream.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		t, w, err := decodeTuple(b[off:])
		if err != nil {
			return nil, 0, err
		}
		out = append(out, t)
		off += w
	}
	return out, off, nil
}

// jsonValue is the JSON-fallback form of a stream.Value.
type jsonValue struct {
	Kind string  `json:"kind"`
	B    bool    `json:"b,omitempty"`
	I    int64   `json:"i,omitempty"`
	F    float64 `json:"f,omitempty"`
	S    string  `json:"s,omitempty"`
	T    int64   `json:"t,omitempty"` // UnixNano
}

func toJSONValue(v stream.Value) jsonValue {
	switch v.Kind() {
	case stream.KindBool:
		return jsonValue{Kind: "bool", B: v.AsBool()}
	case stream.KindInt:
		return jsonValue{Kind: "int", I: v.AsInt()}
	case stream.KindFloat:
		return jsonValue{Kind: "float", F: v.AsFloat()}
	case stream.KindString:
		return jsonValue{Kind: "string", S: v.AsString()}
	case stream.KindTime:
		return jsonValue{Kind: "time", T: v.AsTime().UnixNano()}
	default:
		return jsonValue{Kind: "null"}
	}
}

func (jv jsonValue) value() (stream.Value, error) {
	switch jv.Kind {
	case "null", "":
		return stream.Null(), nil
	case "bool":
		return stream.Bool(jv.B), nil
	case "int":
		return stream.Int(jv.I), nil
	case "float":
		return stream.Float(jv.F), nil
	case "string":
		return stream.String(jv.S), nil
	case "time":
		return stream.Time(time.Unix(0, jv.T).UTC()), nil
	default:
		return stream.Value{}, fmt.Errorf("wire: unknown json value kind %q", jv.Kind)
	}
}

// jsonTuple is the JSON-fallback form of a stream.Tuple.
type jsonTuple struct {
	Ts     int64       `json:"ts"` // UnixNano
	Values []jsonValue `json:"values"`
}

func toJSONTuples(ts []stream.Tuple) []jsonTuple {
	out := make([]jsonTuple, len(ts))
	for i, t := range ts {
		jt := jsonTuple{Ts: t.Ts.UnixNano(), Values: make([]jsonValue, len(t.Values))}
		for j, v := range t.Values {
			jt.Values[j] = toJSONValue(v)
		}
		out[i] = jt
	}
	return out
}

func fromJSONTuples(jts []jsonTuple) ([]stream.Tuple, error) {
	out := make([]stream.Tuple, len(jts))
	for i, jt := range jts {
		t := stream.Tuple{Ts: time.Unix(0, jt.Ts).UTC()}
		if len(jt.Values) > 0 {
			t.Values = make([]stream.Value, len(jt.Values))
			for j, jv := range jt.Values {
				v, err := jv.value()
				if err != nil {
					return nil, err
				}
				t.Values[j] = v
			}
		}
		out[i] = t
	}
	return out, nil
}
