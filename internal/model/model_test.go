package model

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestUnfittedModel(t *testing.T) {
	var m OnlineLinear
	if _, _, ok := m.Coeffs(); ok {
		t.Error("empty model claims a fit")
	}
	m.Update(1, 1)
	if _, ok := m.Predict(1); ok {
		t.Error("single point claims a fit")
	}
	// Two identical x values: slope unidentifiable.
	m.Update(1, 2)
	if _, _, ok := m.Coeffs(); ok {
		t.Error("zero x-variance claims a fit")
	}
	if !strings.Contains(m.String(), "unfitted") {
		t.Errorf("String = %q", m.String())
	}
}

func TestExactLinearFit(t *testing.T) {
	var m OnlineLinear
	for x := 0.0; x < 10; x++ {
		m.Update(x, 3+2*x)
	}
	a, b, ok := m.Coeffs()
	if !ok {
		t.Fatal("no fit")
	}
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = %v + %v x", a, b)
	}
	std, ok := m.ResidualStd()
	if !ok || std > 1e-9 {
		t.Errorf("residual std = %v on exact data", std)
	}
	pred, _ := m.Predict(20)
	if math.Abs(pred-43) > 1e-9 {
		t.Errorf("Predict(20) = %v, want 43", pred)
	}
}

func TestNoisyFitAndScore(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var m OnlineLinear
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 10
		m.Update(x, 1+0.5*x+r.NormFloat64()*0.2)
	}
	a, b, _ := m.Coeffs()
	if math.Abs(a-1) > 0.05 || math.Abs(b-0.5) > 0.02 {
		t.Errorf("fit = %v + %v x, want ~1 + 0.5x", a, b)
	}
	std, _ := m.ResidualStd()
	if std < 0.15 || std > 0.25 {
		t.Errorf("residual std = %v, want ~0.2", std)
	}
	// A conforming point scores low; a wild one scores high.
	if s, ok := m.Score(5, 3.5, 0); !ok || s > 3 {
		t.Errorf("conforming score = %v, %v", s, ok)
	}
	if s, ok := m.Score(5, 13.5, 0); !ok || s < 10 {
		t.Errorf("outlier score = %v, %v", s, ok)
	}
}

func TestForgetting(t *testing.T) {
	// With forgetting, the model tracks a regime change; without, it lags.
	forget := OnlineLinear{Lambda: 0.9}
	var rigid OnlineLinear
	for x := 0.0; x < 50; x++ {
		forget.Update(math.Mod(x, 5), 1*math.Mod(x, 5))
		rigid.Update(math.Mod(x, 5), 1*math.Mod(x, 5))
	}
	for x := 0.0; x < 50; x++ {
		forget.Update(math.Mod(x, 5), 10*math.Mod(x, 5))
		rigid.Update(math.Mod(x, 5), 10*math.Mod(x, 5))
	}
	_, bF, _ := forget.Coeffs()
	_, bR, _ := rigid.Coeffs()
	if math.Abs(bF-10) > 0.5 {
		t.Errorf("forgetting slope = %v, want ~10", bF)
	}
	if math.Abs(bR-10) < math.Abs(bF-10) {
		t.Errorf("rigid model (b=%v) adapted faster than forgetting one (b=%v)", bR, bF)
	}
	if forget.Weight() > 11 {
		t.Errorf("effective weight = %v, want ~1/(1-lambda)", forget.Weight())
	}
}

func TestScoreMinStdFloor(t *testing.T) {
	var m OnlineLinear
	for x := 0.0; x < 10; x++ {
		m.Update(x, 2*x) // perfect fit, residual std 0
	}
	if _, ok := m.Score(5, 10.5, 0); ok {
		t.Error("zero residual std without floor should refuse to score")
	}
	s, ok := m.Score(5, 10.5, 0.1)
	if !ok || math.Abs(s-5) > 1e-6 {
		t.Errorf("floored score = %v, %v; want 5", s, ok)
	}
}

func TestQuickFitRecoversLine(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := r.Float64()*20 - 10
		b := r.Float64()*4 - 2
		var m OnlineLinear
		for i := 0; i < 200; i++ {
			x := r.Float64() * 10
			m.Update(x, a+b*x)
		}
		ga, gb, ok := m.Coeffs()
		if !ok {
			return false
		}
		return math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickResidualStdNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := OnlineLinear{Lambda: 0.5 + r.Float64()/2}
		for i := 0; i < 50; i++ {
			m.Update(r.NormFloat64()*5, r.NormFloat64()*5)
		}
		std, ok := m.ResidualStd()
		return !ok || (std >= 0 && !math.IsNaN(std))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
