// Package model implements online regression models for model-based
// receptor cleaning — the BBQ-style technique the paper sketches in
// §6.3.1: "Such a function would build models of the receptor streams to
// assist in cleaning the data", e.g. exploiting the correlation between a
// mote's voltage and temperature sensors to detect fail-dirty readings
// from a single device, without neighbours.
package model

import (
	"fmt"
	"math"
)

// OnlineLinear fits y ≈ a + b·x incrementally with exponential
// forgetting: each Update first scales all sufficient statistics by
// Lambda, so old observations fade with horizon ~1/(1-Lambda) updates.
// The zero value with Lambda unset behaves as Lambda = 1 (no forgetting).
type OnlineLinear struct {
	// Lambda is the forgetting factor in (0, 1]; 0 is treated as 1.
	Lambda float64

	sw, sx, sy    float64
	sxx, sxy, syy float64
}

// Update folds one (x, y) observation into the model.
func (m *OnlineLinear) Update(x, y float64) {
	l := m.Lambda
	if l <= 0 || l > 1 {
		l = 1
	}
	m.sw = l*m.sw + 1
	m.sx = l*m.sx + x
	m.sy = l*m.sy + y
	m.sxx = l*m.sxx + x*x
	m.sxy = l*m.sxy + x*y
	m.syy = l*m.syy + y*y
}

// Weight is the effective number of observations in the model.
func (m *OnlineLinear) Weight() float64 { return m.sw }

// moments returns the centered second moments; ok is false until the
// model has enough spread in x to identify a slope.
func (m *OnlineLinear) moments() (mx, my, cxx, cxy, cyy float64, ok bool) {
	if m.sw < 2 {
		return 0, 0, 0, 0, 0, false
	}
	mx = m.sx / m.sw
	my = m.sy / m.sw
	cxx = m.sxx/m.sw - mx*mx
	cxy = m.sxy/m.sw - mx*my
	cyy = m.syy/m.sw - my*my
	if cxx <= 1e-12 {
		return mx, my, cxx, cxy, cyy, false
	}
	return mx, my, cxx, cxy, cyy, true
}

// Coeffs returns the fitted intercept and slope.
func (m *OnlineLinear) Coeffs() (a, b float64, ok bool) {
	mx, my, cxx, cxy, _, ok := m.moments()
	if !ok {
		return 0, 0, false
	}
	b = cxy / cxx
	return my - b*mx, b, true
}

// Predict returns the model's estimate of y at x.
func (m *OnlineLinear) Predict(x float64) (float64, bool) {
	a, b, ok := m.Coeffs()
	if !ok {
		return 0, false
	}
	return a + b*x, true
}

// ResidualStd is the standard deviation of the fit residuals.
func (m *OnlineLinear) ResidualStd() (float64, bool) {
	_, _, cxx, cxy, cyy, ok := m.moments()
	if !ok {
		return 0, false
	}
	v := cyy - cxy*cxy/cxx
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v), true
}

// Score returns the absolute residual of an observation in units of the
// residual standard deviation (a z-score), or false while the model is
// not yet usable. MinStd floors the scale so a near-perfect fit doesn't
// flag everything.
func (m *OnlineLinear) Score(x, y, minStd float64) (float64, bool) {
	pred, ok := m.Predict(x)
	if !ok {
		return 0, false
	}
	std, ok := m.ResidualStd()
	if !ok {
		return 0, false
	}
	if std < minStd {
		std = minStd
	}
	if std == 0 {
		return 0, false
	}
	return math.Abs(y-pred) / std, true
}

// String renders the fitted model for diagnostics.
func (m *OnlineLinear) String() string {
	a, b, ok := m.Coeffs()
	if !ok {
		return fmt.Sprintf("model(unfitted, w=%.1f)", m.sw)
	}
	return fmt.Sprintf("y = %.4g + %.4g*x (w=%.1f)", a, b, m.sw)
}
