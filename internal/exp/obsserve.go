package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"esp/internal/server"
	"esp/internal/telemetry"
	"esp/internal/wire"
)

// ObsServeConfig parameterises the serving-observability overhead
// experiment: the loadgen workload driven over live TCP with the
// tracing plane off, server-sampled, and fully on (client-originated
// traces on every frame), measuring what observability costs the
// serving path.
type ObsServeConfig struct {
	// Load shapes the workload (DefaultLoadgenOptions = 1000 motes).
	Load LoadgenOptions
	// Publishers is the publisher connection count.
	Publishers int
	// Repeats runs each leg this many times, keeping the minimum wall
	// time (least-noise estimator).
	Repeats int
	// SampleN is the sampled leg's 1-in-N epoch trace rate.
	SampleN int
	// Seed seeds trace-ID minting.
	Seed int64
	// SkipTimingGate disables the noise-spread hard gate (used by the
	// smoke test, whose tiny workload is all noise).
	SkipTimingGate bool
}

// DefaultObsServeConfig sizes the experiment for `espbench -exp
// obsserve`.
func DefaultObsServeConfig() ObsServeConfig {
	// SampleN must stay below the workload's 30 epoch boundaries —
	// the server samples at advance time, so 1/8 of 30 advances means
	// ~3 traced epochs per run.
	return ObsServeConfig{
		Load:       DefaultLoadgenOptions(),
		Publishers: 8,
		Repeats:    3,
		SampleN:    8,
		Seed:       7,
	}
}

// ObsServeLeg is one tracing mode's measurement.
type ObsServeLeg struct {
	Mode          string  `json:"mode"` // off-a, off-b, sampled, full
	TraceSampleN  int     `json:"trace_sample_n"`
	ClientTracing bool    `json:"client_tracing"`
	WallNs        int64   `json:"wall_ns"` // min over Repeats
	NsPerEpoch    int64   `json:"ns_per_epoch"`
	OverheadPct   float64 `json:"overhead_pct"` // vs the off-a leg
	Spans         int     `json:"spans"`        // server-side spans recorded (last run)
	Traces        int     `json:"traces"`       // distinct trace IDs (last run)
	Fingerprint   string  `json:"fingerprint"`
}

// ObsServeResult is the BENCH_obsserve.json document. The acceptance
// gates: DisabledAllocsPerFrame must be zero (the off path may not
// allocate), the two off legs must agree within noise (the tracing
// plane's disabled cost is unmeasurable), every leg's fingerprint must
// match (tracing never changes output), and the full leg must carry
// one trace ID from a client publish through the server's spans to a
// delivered Data frame.
type ObsServeResult struct {
	Experiment string `json:"experiment"`
	Motes      int    `json:"motes"`
	Epochs     int    `json:"epochs"`
	Publishers int    `json:"publishers"`
	Repeats    int    `json:"repeats"`
	SampleN    int    `json:"sample_n"`
	Seed       int64  `json:"seed"`

	Legs []ObsServeLeg `json:"legs"`

	// DisabledAllocsPerFrame is the heap allocations per simulated
	// frame on the tracing-disabled path (nil and disabled tracer
	// Sample + zero-ID Record), measured before any leg runs.
	DisabledAllocsPerFrame float64 `json:"disabled_allocs_per_frame"`
	// DisabledSpreadPct is |off-b − off-a| / off-a — the run-to-run
	// noise floor the tracing overhead is judged against.
	DisabledSpreadPct float64 `json:"disabled_spread_pct"`

	FingerprintMatch bool `json:"fingerprint_match"`
	TraceIDEndToEnd  bool `json:"trace_id_end_to_end"`
}

// disabledNoiseTolerancePct is the hard gate on the off legs' spread:
// two identical tracing-off runs differing by more than this means the
// measurement (or the disabled path) is broken.
const disabledNoiseTolerancePct = 3.0

// obsServeLegSpec is one leg's tracing wiring.
type obsServeLegSpec struct {
	mode          string
	serverSampleN int
	clientSampleN int // 0 = no client tracer
}

// obsServeLegOut is one leg run's raw outcome.
type obsServeLegOut struct {
	wallNs       int64
	fp           *server.Fingerprint
	spans        int
	traces       int
	deliveredIDs map[uint64]bool
	serverTracer *telemetry.Tracer
	clientTracer *telemetry.Tracer
}

// runObsServeLeg drives the workload once over live TCP with the
// leg's tracing configuration and collects spans + the output
// fingerprint.
func runObsServeLeg(cfg ObsServeConfig, spec []byte, steps []Step, leg obsServeLegSpec) (*obsServeLegOut, error) {
	s, err := server.Listen(server.Config{
		Addr:         "127.0.0.1:0",
		TraceSampleN: leg.serverSampleN,
		TraceSeed:    cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	go s.Serve() //nolint:errcheck
	defer shutdown(s)

	var clientTracer *telemetry.Tracer
	if leg.clientSampleN > 0 {
		clientTracer = telemetry.NewTracer(leg.clientSampleN, cfg.Seed+1)
	}

	ctl, err := server.Dial(s.Addr())
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	ctl.SetTracer(clientTracer)
	if err := ctl.Create("obsserve", spec); err != nil {
		return nil, err
	}
	subc, err := server.Dial(s.Addr())
	if err != nil {
		return nil, err
	}
	defer subc.Close()
	if err := subc.Subscribe("obsserve", "mote"); err != nil {
		return nil, err
	}

	out := &obsServeLegOut{
		fp:           server.NewFingerprint(),
		deliveredIDs: make(map[uint64]bool),
		serverTracer: s.Tracer(),
		clientTracer: clientTracer,
	}
	subErr := collect(out.fp, steps, func() (wire.Data, bool, error) {
		d, _, done, err := subc.Next()
		if err == nil && !done && d.TraceID != 0 {
			out.deliveredIDs[d.TraceID] = true
		}
		return d, done, err
	})

	pubs := make([]*server.Client, cfg.Publishers)
	for i := range pubs {
		c, err := server.Dial(s.Addr())
		if err != nil {
			return nil, err
		}
		defer c.Close()
		c.SetTracer(clientTracer)
		if err := c.Hello("obsserve", "pub"); err != nil {
			return nil, err
		}
		pubs[i] = c
	}

	start := time.Now()
	err = drive(steps, cfg.Publishers,
		func(now time.Time) error { return ctl.Advance(now) },
		func(w int, rec string, st Step) error {
			_, err := pubs[w].Publish(rec, st.Pubs[rec])
			return err
		}, nil)
	if err != nil {
		return nil, err
	}
	out.wallNs = time.Since(start).Nanoseconds()
	if err := <-subErr; err != nil {
		return nil, err
	}
	if tr := s.Tracer(); tr != nil {
		spans := tr.Spans()
		out.spans = len(spans)
		ids := make(map[telemetry.TraceID]bool)
		for _, sp := range spans {
			ids[sp.TraceID] = true
		}
		out.traces = len(ids)
	}
	return out, nil
}

// measureDisabledAllocs measures heap allocations per frame on the
// tracing-disabled hot path: the nil-tracer Sample a client performs
// per call and the disabled-tracer Sample + zero-ID Record branch the
// server performs per frame. Run before any server goroutines exist so
// the Mallocs delta is attributable.
func measureDisabledAllocs() float64 {
	var nilTr *telemetry.Tracer
	disabled := telemetry.NewTracer(1, 0)
	disabled.SetEnabled(false)
	const frames = 100_000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < frames; i++ {
		if _, ok := nilTr.Sample(); ok {
			panic("nil tracer sampled")
		}
		if _, ok := disabled.Sample(); ok {
			panic("disabled tracer sampled")
		}
		disabled.Record(telemetry.SpanRecord{})
		nilTr.Record(telemetry.SpanRecord{})
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / frames
}

// RunObsServe runs the four legs — tracing off twice (the noise
// floor), server-sampled, and fully traced — and hard-fails on any
// acceptance-gate violation, so `espbench -exp obsserve` doubles as an
// overhead regression test.
func RunObsServe(cfg ObsServeConfig) (*ObsServeResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	spec := LoadgenSpec(cfg.Load)
	steps, _ := LoadgenWorkload(cfg.Load)

	res := &ObsServeResult{
		Experiment: "obsserve",
		Motes:      cfg.Load.Motes,
		Epochs:     cfg.Load.Epochs,
		Publishers: cfg.Publishers,
		Repeats:    cfg.Repeats,
		SampleN:    cfg.SampleN,
		Seed:       cfg.Seed,
	}

	res.DisabledAllocsPerFrame = measureDisabledAllocs()
	if res.DisabledAllocsPerFrame > 0.01 {
		return nil, fmt.Errorf("obsserve: tracing-disabled path allocates (%.4f allocs/frame, want 0)",
			res.DisabledAllocsPerFrame)
	}

	// One discarded warmup run: the first leg otherwise pays the
	// process's cold-start costs (page faults, socket buffers, GC
	// sizing) and the off-leg spread measures warmup, not tracing.
	if !cfg.SkipTimingGate {
		if _, err := runObsServeLeg(cfg, spec, steps, obsServeLegSpec{mode: "warmup"}); err != nil {
			return nil, fmt.Errorf("obsserve: warmup: %w", err)
		}
	}

	legs := []obsServeLegSpec{
		{mode: "off-a"},
		{mode: "off-b"},
		{mode: "sampled", serverSampleN: cfg.SampleN},
		{mode: "full", serverSampleN: 1, clientSampleN: 1},
	}
	outs := make([]*obsServeLegOut, len(legs))
	for i, leg := range legs {
		// Keep the last run's spans/fingerprint (any run's would do —
		// they are deterministic) and the minimum wall time over the
		// repeats.
		var best *obsServeLegOut
		minWall := int64(math.MaxInt64)
		for r := 0; r < cfg.Repeats; r++ {
			out, err := runObsServeLeg(cfg, spec, steps, leg)
			if err != nil {
				return nil, fmt.Errorf("obsserve: %s leg: %w", leg.mode, err)
			}
			if out.wallNs < minWall {
				minWall = out.wallNs
			}
			best = out
		}
		best.wallNs = minWall
		outs[i] = best
		clientTraced := leg.clientSampleN > 0
		res.Legs = append(res.Legs, ObsServeLeg{
			Mode:          leg.mode,
			TraceSampleN:  leg.serverSampleN,
			ClientTracing: clientTraced,
			WallNs:        best.wallNs,
			NsPerEpoch:    best.wallNs / int64(cfg.Load.Epochs),
			Spans:         best.spans,
			Traces:        best.traces,
			Fingerprint:   best.fp.String(),
		})
	}

	// Overheads vs off-a; the off legs' spread is the noise floor.
	offA := float64(res.Legs[0].WallNs)
	for i := range res.Legs {
		res.Legs[i].OverheadPct = 100 * (float64(res.Legs[i].WallNs) - offA) / offA
	}
	res.DisabledSpreadPct = math.Abs(float64(res.Legs[1].WallNs)-offA) / offA * 100
	if !cfg.SkipTimingGate && res.DisabledSpreadPct > disabledNoiseTolerancePct {
		return nil, fmt.Errorf("obsserve: tracing-off legs differ by %.2f%% (tolerance %.1f%%): disabled path is not free or the host is too noisy",
			res.DisabledSpreadPct, disabledNoiseTolerancePct)
	}

	// Output identity: tracing must never change what is delivered.
	res.FingerprintMatch = true
	for _, l := range res.Legs[1:] {
		if l.Fingerprint != res.Legs[0].Fingerprint {
			res.FingerprintMatch = false
		}
	}
	if !res.FingerprintMatch {
		return nil, fmt.Errorf("obsserve: fingerprints diverge across tracing modes: %+v", res.Legs)
	}

	// Sampled leg: the server must actually have traced something.
	if res.Legs[2].Spans == 0 || res.Legs[2].Traces == 0 {
		return nil, fmt.Errorf("obsserve: sampled leg recorded no spans")
	}

	// Full leg: one client-minted trace ID must be observable at every
	// hop — client.publish span, server-side apply/step/deliver spans,
	// and the delivered Data frame.
	full := outs[3]
	res.TraceIDEndToEnd = traceEndToEnd(full)
	if !res.TraceIDEndToEnd {
		return nil, fmt.Errorf("obsserve: no trace ID observed end to end in the full leg")
	}
	return res, nil
}

// traceEndToEnd reports whether some delivered frame's trace ID has a
// client.publish span on the client side and apply, step, and deliver
// spans on the server side.
func traceEndToEnd(out *obsServeLegOut) bool {
	if out.clientTracer == nil || out.serverTracer == nil {
		return false
	}
	clientSpans := out.clientTracer.ByTrace()
	serverSpans := out.serverTracer.ByTrace()
	for raw := range out.deliveredIDs {
		id := telemetry.TraceID(raw)
		var hasPublish bool
		for _, sp := range clientSpans[id] {
			if sp.Name == "client.publish" {
				hasPublish = true
			}
		}
		if !hasPublish {
			continue
		}
		var hasApply, hasStep, hasDeliver bool
		for _, sp := range serverSpans[id] {
			switch sp.Name {
			case "server.apply":
				hasApply = true
			case "pipeline.step":
				hasStep = true
			case "subscriber.deliver":
				hasDeliver = true
			}
		}
		if hasApply && hasStep && hasDeliver {
			return true
		}
	}
	return false
}
