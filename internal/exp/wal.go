package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"esp/internal/server"
	"esp/internal/stream"
	"esp/internal/telemetry"
	"esp/internal/wal"
)

// WALConfig parameterises the durability experiment: the journalling
// overhead of a served wide deployment (the sched workload, served),
// and the boot-recovery cost of a large crashed journal.
type WALConfig struct {
	// Sched shapes the overhead leg: the scheduler comparison's wide
	// deployment, driven through a served tenant with journalling off
	// and on.
	Sched SchedConfig
	// RecoveryMotes, RecoveryEpochs and RecoverySamples shape the
	// recovery leg's journal: motes × epochs × samples readings are
	// journalled, the tenant is killed, and boot recovery is timed.
	RecoveryMotes, RecoveryEpochs, RecoverySamples int
	// ResumeEpochs is how many post-recovery epochs are re-driven to
	// prove the replayed window state byte-identical.
	ResumeEpochs int
	// Runs is how many times each timed leg repeats (best wall time
	// wins, standard bench hygiene).
	Runs int
}

// DefaultWALConfig sizes the experiment for `espbench -exp wal`: the
// default sched workload (48 receptors × 144 epochs) for overhead, and
// a 60-epoch 1000-mote journal for recovery.
func DefaultWALConfig() WALConfig {
	return WALConfig{
		Sched:           DefaultSchedConfig(),
		RecoveryMotes:   1000,
		RecoveryEpochs:  60,
		RecoverySamples: 2,
		ResumeEpochs:    8,
		Runs:            2,
	}
}

// WALAppendResult is the overhead leg: the same served workload three
// ways — journalling off, journalling without the per-commit
// fdatasync ("append": the encode/frame/write cost that scales with
// data volume), and full durability ("durable": append plus one
// fdatasync per committed epoch). The decomposition separates the
// cost that grows with the workload from the fixed device-sync
// latency per commit, which is a property of the filesystem, not the
// log format, and is amortised over a whole epoch in deployment.
type WALAppendResult struct {
	Receptors         int   `json:"receptors"`
	Epochs            int   `json:"epochs"`
	TuplesPublished   int   `json:"tuples_published"`
	OffWallNs         int64 `json:"off_wall_ns"`
	AppendWallNs      int64 `json:"append_wall_ns"`
	DurableWallNs     int64 `json:"durable_wall_ns"`
	OffNsPerEpoch     int64 `json:"off_ns_per_epoch"`
	AppendNsPerEpoch  int64 `json:"append_ns_per_epoch"`
	DurableNsPerEpoch int64 `json:"durable_ns_per_epoch"`
	// AppendOverhead is (append−off)/off — the acceptance gate is
	// ≤ 0.15.
	AppendOverhead float64 `json:"append_overhead"`
	// DurableOverhead is (durable−off)/off, reported alongside: the
	// bench drives epochs back-to-back, so the per-commit fdatasync is
	// compared against microseconds of compute rather than the
	// minutes-long epoch it amortises over in deployment (see
	// FsyncDutyCycle).
	DurableOverhead float64 `json:"durable_overhead"`
	JournalBytes    int64   `json:"journal_bytes"`
	// Fsync digests the per-commit fdatasync latency (one fsync per
	// committed epoch, from the durable pass).
	Fsync telemetry.HistogramSnapshot `json:"fsync"`
	// FsyncDutyCycle is mean fdatasync time divided by the workload's
	// real epoch period — the fraction of deployment wall-clock the
	// durability sync actually costs.
	FsyncDutyCycle float64 `json:"fsync_duty_cycle"`
	// Identical reports whether both journalled runs' output
	// fingerprints matched the unjournalled run's.
	Identical   bool   `json:"identical"`
	Fingerprint string `json:"fingerprint"`
}

// WALRecoveryResult is the recovery leg: a crashed journal replayed at
// boot.
type WALRecoveryResult struct {
	Motes           int   `json:"motes"`
	Epochs          int   `json:"epochs"`
	TuplesJournaled int   `json:"tuples_journaled"`
	JournalBytes    int64 `json:"journal_bytes"`
	JournalSegments int   `json:"journal_segments"`
	// RecoverWallNs times Engine.Recover: scan, truncate, and replay of
	// every committed epoch through a fresh pipeline.
	RecoverWallNs int64   `json:"recover_wall_ns"`
	NsPerEpoch    int64   `json:"ns_per_epoch"`
	TuplesPerSec  float64 `json:"replay_tuples_per_sec"`
	// SubSecond is the acceptance gate: RecoverWallNs < 1e9.
	SubSecond bool `json:"sub_second"`
	// Identical reports whether ResumeEpochs epochs driven after
	// recovery fingerprinted identically to the same epochs of an
	// uninterrupted run.
	ResumeEpochs int  `json:"resume_epochs"`
	Identical    bool `json:"identical"`
}

// WALResult is BENCH_wal.json.
type WALResult struct {
	Append   WALAppendResult   `json:"append"`
	Recovery WALRecoveryResult `json:"recovery"`
}

// wideSpec renders the sched workload's wide deployment as a tenant
// spec: motes in groups of GroupSize, SmoothAvg over the expanded
// window, MergeAvg per epoch — the serving-layer twin of
// BuildWideDeployment.
func wideSpec(receptors, groupSize int, epoch, smoothWin time.Duration) []byte {
	groups := map[string]any{}
	var members []string
	gi := 0
	flush := func() {
		if len(members) > 0 {
			groups[fmt.Sprintf("granule%02d", gi)] = map[string]any{"type": "mote", "members": members}
			members = nil
			gi++
		}
	}
	recs := make([]map[string]any, 0, receptors)
	for i := 0; i < receptors; i++ {
		id := fmt.Sprintf("wide%03d", i)
		recs = append(recs, map[string]any{"id": id, "type": "mote", "schema": "temp:float"})
		members = append(members, id)
		if len(members) == groupSize {
			flush()
		}
	}
	flush()
	spec := map[string]any{
		"deployment": map[string]any{
			"epoch":  epoch.String(),
			"groups": groups,
			"pipelines": map[string]any{
				"mote": map[string]any{
					"smooth": fmt.Sprintf("SELECT avg(temp) AS temp FROM smooth_input [Range By '%d sec']", int(smoothWin/time.Second)),
					"merge":  fmt.Sprintf("SELECT avg(temp) AS temp FROM merge_input [Range By '%d sec']", int(epoch/time.Second)),
				},
			},
		},
		"receptors": recs,
		"quota":     map[string]any{"channel_cap": 1 << 16},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// wideWorkload pre-generates the deterministic sinusoid readings of
// BuildWideDeployment, shaped for publishing: steps[e][r] is receptor
// r's batch for epoch e+1.
func wideWorkload(receptors, samples, epochs int, epoch time.Duration) ([][][]stream.Tuple, int) {
	start := time.Unix(0, 0).UTC()
	steps := make([][][]stream.Tuple, epochs)
	total := 0
	for e := 0; e < epochs; e++ {
		epochStart := start.Add(time.Duration(e) * epoch)
		steps[e] = make([][]stream.Tuple, receptors)
		for r := 0; r < receptors; r++ {
			batch := make([]stream.Tuple, samples)
			for s := 0; s < samples; s++ {
				ts := epochStart.Add(time.Duration(s+1) * epoch / time.Duration(samples+1))
				v := 20 + 5*math.Sin(float64(e*samples+s)/37) + 0.1*float64(r%7)
				batch[s] = stream.NewTuple(ts, stream.Float(v))
			}
			steps[e][r] = batch
			total += samples
		}
	}
	return steps, total
}

// driveServed runs the workload through a served tenant and returns the
// output fingerprint and the wall time of the publish+advance loop.
// walRoot == "" runs unjournalled; noSync suppresses the per-commit
// fdatasync (the bench's append/durable decomposition).
func driveServed(spec []byte, steps [][][]stream.Tuple, epoch time.Duration, walRoot string, noSync bool) (*server.Fingerprint, time.Duration, *server.Tenant, error) {
	eng := server.NewEngine(0)
	if walRoot != "" {
		eng.SetWALDir(walRoot)
		eng.SetWALNoSync(noSync)
	}
	ten, err := eng.Create("wide", spec)
	if err != nil {
		return nil, 0, nil, err
	}
	sub, err := ten.Subscribe("mote")
	if err != nil {
		return nil, 0, nil, err
	}
	fp := server.NewFingerprint()
	start := time.Unix(0, 0).UTC()
	t0 := time.Now()
	for e, batches := range steps {
		for r, batch := range batches {
			if len(batch) == 0 {
				continue
			}
			if _, err := ten.Publish(fmt.Sprintf("wide%03d", r), batch); err != nil {
				return nil, 0, nil, err
			}
		}
		if err := ten.Advance(start.Add(time.Duration(e+1) * epoch)); err != nil {
			return nil, 0, nil, err
		}
		for len(sub.C()) > 0 {
			fp.Add(<-sub.C())
		}
	}
	wall := time.Since(t0)
	return fp, wall, ten, nil
}

// dirBytes sums the regular files under dir.
func dirBytes(dir string) int64 {
	var n int64
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, ent := range ents {
		if info, err := ent.Info(); err == nil && !ent.IsDir() {
			n += info.Size()
		}
	}
	return n
}

// runWALAppend measures journalling overhead on the served sched
// workload: Runs passes with journalling off and on (best wall each),
// fingerprints cross-checked.
func runWALAppend(cfg WALConfig) (*WALAppendResult, error) {
	sc := cfg.Sched
	epochs := int(sc.Duration / sc.Epoch)
	spec := wideSpec(sc.Receptors, sc.GroupSize, sc.Epoch, sc.SmoothWindow)
	steps, published := wideWorkload(sc.Receptors, sc.SamplesPerEpoch, epochs, sc.Epoch)

	res := &WALAppendResult{Receptors: sc.Receptors, Epochs: epochs, TuplesPublished: published}
	var offFP, appFP, durFP *server.Fingerprint

	// One timed pass: best-of-Runs wall of the publish+advance loop,
	// with journalling configured per mode.
	pass := func(journal, noSync bool) (*server.Fingerprint, int64, error) {
		var best int64
		var fp *server.Fingerprint
		for run := 0; run < cfg.Runs; run++ {
			root := ""
			if journal {
				var err error
				root, err = os.MkdirTemp("", "esp-wal-bench-*")
				if err != nil {
					return nil, 0, err
				}
			}
			f, wall, ten, err := driveServed(spec, steps, sc.Epoch, root, noSync)
			if err == nil && journal && !noSync {
				res.Fsync = ten.Registry().Histogram("wal_fsync_ns").Snapshot()
			}
			if err == nil {
				err = ten.Drain()
			}
			if err == nil && journal {
				res.JournalBytes = dirBytes(fmt.Sprintf("%s/wide", root))
			}
			if root != "" {
				os.RemoveAll(root)
			}
			if err != nil {
				return nil, 0, err
			}
			fp = f
			if best == 0 || int64(wall) < best {
				best = int64(wall)
			}
		}
		return fp, best, nil
	}

	var err error
	if offFP, res.OffWallNs, err = pass(false, false); err != nil {
		return nil, err
	}
	if appFP, res.AppendWallNs, err = pass(true, true); err != nil {
		return nil, err
	}
	if durFP, res.DurableWallNs, err = pass(true, false); err != nil {
		return nil, err
	}

	res.OffNsPerEpoch = res.OffWallNs / int64(epochs)
	res.AppendNsPerEpoch = res.AppendWallNs / int64(epochs)
	res.DurableNsPerEpoch = res.DurableWallNs / int64(epochs)
	res.AppendOverhead = float64(res.AppendWallNs-res.OffWallNs) / float64(res.OffWallNs)
	res.DurableOverhead = float64(res.DurableWallNs-res.OffWallNs) / float64(res.OffWallNs)
	if res.Fsync.Count > 0 {
		res.FsyncDutyCycle = float64(res.Fsync.Sum) / float64(res.Fsync.Count) / float64(sc.Epoch)
	}
	res.Identical = offFP.Sum() == appFP.Sum() && offFP.Frames() == appFP.Frames() &&
		offFP.Sum() == durFP.Sum() && offFP.Frames() == durFP.Frames()
	res.Fingerprint = fmt.Sprintf("%016x", durFP.Sum())
	if !res.Identical {
		return res, fmt.Errorf("exp: journalled output %v / %v diverged from unjournalled %v", appFP, durFP, offFP)
	}
	return res, nil
}

// runWALRecovery journals a large workload, kills the tenant, and times
// boot recovery; then drives ResumeEpochs more epochs on the recovered
// tenant and on an uninterrupted control to prove the replayed state
// byte-identical.
func runWALRecovery(cfg WALConfig) (*WALRecoveryResult, error) {
	const epoch = time.Second
	groupSize := 4
	spec := wideSpec(cfg.RecoveryMotes, groupSize, epoch, 4*epoch)
	steps, journaled := wideWorkload(cfg.RecoveryMotes, cfg.RecoverySamples, cfg.RecoveryEpochs+cfg.ResumeEpochs, epoch)
	crashSteps, resumeSteps := steps[:cfg.RecoveryEpochs], steps[cfg.RecoveryEpochs:]
	journaled = cfg.RecoveryMotes * cfg.RecoverySamples * cfg.RecoveryEpochs

	res := &WALRecoveryResult{
		Motes:           cfg.RecoveryMotes,
		Epochs:          cfg.RecoveryEpochs,
		TuplesJournaled: journaled,
		ResumeEpochs:    cfg.ResumeEpochs,
	}

	// Control: uninterrupted run over all epochs; fingerprint only the
	// resume suffix.
	ctrlEng := server.NewEngine(0)
	ctrl, err := ctrlEng.Create("wide", spec)
	if err != nil {
		return nil, err
	}
	ctrlSub, err := ctrl.Subscribe("mote")
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()
	ctrlFP := server.NewFingerprint()
	for e, batches := range steps {
		for r, batch := range batches {
			if _, err := ctrl.Publish(fmt.Sprintf("wide%03d", r), batch); err != nil {
				return nil, err
			}
		}
		if err := ctrl.Advance(start.Add(time.Duration(e+1) * epoch)); err != nil {
			return nil, err
		}
		for len(ctrlSub.C()) > 0 {
			d := <-ctrlSub.C()
			if e >= cfg.RecoveryEpochs {
				ctrlFP.Add(d)
			}
		}
	}
	if err := ctrl.Drain(); err != nil {
		return nil, err
	}

	var best int64
	for run := 0; run < cfg.Runs; run++ {
		root, err := os.MkdirTemp("", "esp-wal-recover-*")
		if err != nil {
			return nil, err
		}
		// Journal the crash leg and kill the tenant.
		crashEng := server.NewEngine(0)
		crashEng.SetWALDir(root)
		ten, err := crashEng.Create("wide", spec)
		if err != nil {
			os.RemoveAll(root)
			return nil, err
		}
		for e, batches := range crashSteps {
			for r, batch := range batches {
				if _, err := ten.Publish(fmt.Sprintf("wide%03d", r), batch); err != nil {
					os.RemoveAll(root)
					return nil, err
				}
			}
			if err := ten.Advance(start.Add(time.Duration(e+1) * epoch)); err != nil {
				os.RemoveAll(root)
				return nil, err
			}
		}
		ten.Crash()
		res.JournalBytes = dirBytes(fmt.Sprintf("%s/wide", root))
		if segs, err := wal.JournalSegments(fmt.Sprintf("%s/wide", root)); err == nil {
			res.JournalSegments = len(segs)
		}

		// Timed: boot recovery of the crashed journal.
		bootEng := server.NewEngine(0)
		bootEng.SetWALDir(root)
		t0 := time.Now()
		reports, err := bootEng.Recover()
		wall := time.Since(t0)
		if err != nil {
			os.RemoveAll(root)
			return nil, err
		}
		if len(reports) != 1 || reports[0].Epochs != cfg.RecoveryEpochs {
			os.RemoveAll(root)
			return nil, fmt.Errorf("exp: recovery replayed %+v, want %d epochs", reports, cfg.RecoveryEpochs)
		}
		if best == 0 || int64(wall) < best {
			best = int64(wall)
		}

		// Last run keeps the recovered tenant to prove state identity.
		if run == cfg.Runs-1 {
			rec, _ := bootEng.Tenant("wide")
			sub, err := rec.Subscribe("mote")
			if err != nil {
				os.RemoveAll(root)
				return nil, err
			}
			fp := server.NewFingerprint()
			for e, batches := range resumeSteps {
				for r, batch := range batches {
					if _, err := rec.Publish(fmt.Sprintf("wide%03d", r), batch); err != nil {
						os.RemoveAll(root)
						return nil, err
					}
				}
				if err := rec.Advance(start.Add(time.Duration(cfg.RecoveryEpochs+e+1) * epoch)); err != nil {
					os.RemoveAll(root)
					return nil, err
				}
				for len(sub.C()) > 0 {
					fp.Add(<-sub.C())
				}
			}
			if err := rec.Drain(); err != nil {
				os.RemoveAll(root)
				return nil, err
			}
			res.Identical = fp.Sum() == ctrlFP.Sum() && fp.Frames() == ctrlFP.Frames()
			if !res.Identical {
				os.RemoveAll(root)
				return res, fmt.Errorf("exp: post-recovery output %v diverged from control %v", fp, ctrlFP)
			}
		}
		os.RemoveAll(root)
	}
	res.RecoverWallNs = best
	res.NsPerEpoch = best / int64(cfg.RecoveryEpochs)
	res.TuplesPerSec = float64(journaled) / (float64(best) / float64(time.Second))
	res.SubSecond = best < int64(time.Second)
	return res, nil
}

// RunWAL runs the durability experiment: append overhead and boot
// recovery.
func RunWAL(cfg WALConfig) (*WALResult, error) {
	app, err := runWALAppend(cfg)
	if err != nil {
		return nil, err
	}
	rec, err := runWALRecovery(cfg)
	if err != nil {
		return nil, err
	}
	return &WALResult{Append: *app, Recovery: *rec}, nil
}
