package exp

import (
	"testing"
	"time"
)

// smokeNetChaosConfig is a scaled-down netchaos run: a small mote
// population and few epochs, but the full fault schedule shape (one
// fault per boundary) and every acceptance gate active.
func smokeNetChaosConfig() NetChaosConfig {
	cfg := DefaultNetChaosConfig()
	cfg.Load.Motes = 64
	cfg.Load.GroupSize = 8
	cfg.Load.Epochs = 10
	cfg.Publishers = 4
	cfg.CallTimeout = 300 * time.Millisecond
	cfg.StallFor = 100 * time.Millisecond
	cfg.PartitionFor = 80 * time.Millisecond
	return cfg
}

// TestNetChaosSmoke runs the resilience harness end to end: RunNetChaos
// itself enforces the gates (byte-identical fingerprint vs the
// fault-free run, exactly-once tuple application, fault counters
// non-zero), so the test mostly checks the summary shape.
func TestNetChaosSmoke(t *testing.T) {
	res, err := RunNetChaos(smokeNetChaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.FingerprintMatch || !res.ExactlyOnce {
		t.Fatalf("gates passed RunNetChaos but summary disagrees: match=%v exactlyOnce=%v",
			res.FingerprintMatch, res.ExactlyOnce)
	}
	total := 0
	for _, n := range res.Faults {
		total += n
	}
	if total != res.Epochs {
		t.Fatalf("injected %d faults over %d boundaries, want one per boundary", total, res.Epochs)
	}
	if res.ResumeLatency.Count == 0 {
		t.Fatal("no resume latencies recorded despite faults")
	}
	if res.LinksKilled == 0 || res.Reconnects == 0 {
		t.Fatalf("faults did not bite: killed=%d reconnects=%d", res.LinksKilled, res.Reconnects)
	}
}
