package exp

import (
	"testing"
	"time"
)

// TestShelfOrderingRobustAcrossSeeds guards against seed-cherry-picking:
// the Figure 5 qualitative ordering must hold for several simulation
// seeds, not just the default.
func TestShelfOrderingRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 3, 5} {
		cfg := shortShelf()
		cfg.Sim.Seed = seed
		raw := cfg
		raw.Mode = ModeRaw
		rawRes, err := RunShelf(raw)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		smooth := cfg
		smooth.Mode = ModeSmoothOnly
		smoothRes, err := RunShelf(smooth)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full := cfg
		full.Mode = ModeSmoothArbitrate
		fullRes, err := RunShelf(full)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !(fullRes.AvgRelErr < smoothRes.AvgRelErr && smoothRes.AvgRelErr < rawRes.AvgRelErr) {
			t.Errorf("seed %d: ordering broken: full %.3f, smooth %.3f, raw %.3f",
				seed, fullRes.AvgRelErr, smoothRes.AvgRelErr, rawRes.AvgRelErr)
		}
	}
}

// TestRedwoodLadderRobustAcrossSeeds does the same for the §5.2 yield
// ladder.
func TestRedwoodLadderRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{2, 9} {
		cfg := DefaultRedwoodConfig()
		cfg.Sim.Seed = seed
		cfg.Sim.Motes = 10
		cfg.Duration = 24 * time.Hour
		res, err := RunRedwoodYield(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !(res.RawYield < res.SmoothYield && res.SmoothYield < res.MergeYield) {
			t.Errorf("seed %d: yield ladder broken: %.3f, %.3f, %.3f",
				seed, res.RawYield, res.SmoothYield, res.MergeYield)
		}
	}
}

// TestDigitalHomeRobustAcrossSeeds checks the detector stays in the
// paper's regime for several seeds.
func TestDigitalHomeRobustAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		cfg := DefaultHomeConfig()
		cfg.Sim.Seed = seed
		res, err := RunDigitalHome(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Accuracy < 0.8 {
			t.Errorf("seed %d: accuracy collapsed to %.3f", seed, res.Accuracy)
		}
	}
}
