package exp

import (
	"time"

	"esp/internal/core"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// ActuationConfig parameterises the §5.3.1 receptor-actuation experiment:
// can ESP smooth with a window equal to the temporal granule (instead of
// the paper's 6×-expanded 30-minute window) by asking starved motes to
// sample faster?
type ActuationConfig struct {
	Sim      sim.RedwoodConfig
	Duration time.Duration
	// Granule is the application's temporal granule and the Smooth window.
	Granule time.Duration
	// Policy drives the control loop in the actuated configuration.
	Policy core.ActuationPolicy
}

// DefaultActuationConfig uses the redwood deployment with a 5-minute
// granule and a 4× actuated sample rate.
func DefaultActuationConfig() ActuationConfig {
	simCfg := sim.DefaultRedwoodConfig()
	return ActuationConfig{
		Sim:      simCfg,
		Duration: 48 * time.Hour,
		Granule:  simCfg.Epoch, // smooth with window == granule
		Policy: core.ActuationPolicy{
			Target:  0.9,
			Horizon: 6, // re-evaluate every 30 minutes
			Fast:    simCfg.Epoch / 4,
			Slow:    0,
		},
	}
}

// ActuationVariant is one configuration of the comparison.
type ActuationVariant struct {
	Name string
	// SmoothYield is the fraction of (mote, epoch) pairs with Smooth
	// output.
	SmoothYield float64
	// SamplesPerMoteHour measures the energy cost: samples taken
	// (delivered or not) per mote per hour.
	SamplesPerMoteHour float64
	// Transitions counts actuation commands (0 for static variants).
	Transitions int
}

// RunActuation compares three configurations on identical deployments:
//
//  1. "granule window": Smooth window = granule, no actuation — starved
//     by the 40 % delivery rate (the problem §5.3.1 states).
//  2. "expanded window": the paper's workaround, a 6× window.
//  3. "actuated": Smooth window = granule, with the control loop raising
//     starved motes' sample rates.
func RunActuation(cfg ActuationConfig) ([]ActuationVariant, error) {
	run := func(name string, window time.Duration, actuate bool) (*ActuationVariant, error) {
		sc, err := sim.NewRedwoodScenario(cfg.Sim)
		if err != nil {
			return nil, err
		}
		recs := make([]receptor.Receptor, len(sc.Motes))
		for i, m := range sc.Motes {
			recs[i] = m
		}
		p, err := core.NewProcessor(&core.Deployment{
			Epoch:     cfg.Sim.Epoch,
			Receptors: recs,
			Groups:    sc.Groups,
			Pipelines: map[receptor.Type]*core.Pipeline{
				receptor.TypeMote: {
					Type:   receptor.TypeMote,
					Smooth: core.SmoothAvg("temp", window),
				},
			},
		})
		if err != nil {
			return nil, err
		}
		var act *core.Actuator
		if actuate {
			if act, err = core.NewActuator(p, receptor.TypeMote, cfg.Policy); err != nil {
				return nil, err
			}
		}
		// Count per-epoch smooth coverage and total samples taken.
		emitted := make(map[string]bool)
		covered := 0
		p.Tap(receptor.TypeMote, core.StageSmooth, func(t stream.Tuple) {
			emitted[t.Values[0].AsString()] = true
		})
		samples := 0
		epochs := 0
		start := time.Unix(0, 0).UTC()
		for now := start.Add(cfg.Sim.Epoch); !now.After(start.Add(cfg.Duration)); now = now.Add(cfg.Sim.Epoch) {
			if err := p.Step(now); err != nil {
				return nil, err
			}
			covered += len(emitted)
			clear(emitted)
			epochs++
			for _, m := range sc.Motes {
				interval := m.SampleInterval()
				if interval <= 0 {
					samples++
					continue
				}
				samples += int(cfg.Sim.Epoch / interval)
			}
		}
		v := &ActuationVariant{Name: name}
		if v.SmoothYield, err = metrics.EpochYield(covered, len(sc.Motes)*epochs); err != nil {
			return nil, err
		}
		v.SamplesPerMoteHour = float64(samples) / float64(len(sc.Motes)) / cfg.Duration.Hours()
		if act != nil {
			v.Transitions = act.Transitions
		}
		return v, nil
	}

	var out []ActuationVariant
	for _, c := range []struct {
		name    string
		window  time.Duration
		actuate bool
	}{
		{"granule window, static", cfg.Granule, false},
		{"expanded 6x window, static", 6 * cfg.Granule, false},
		{"granule window, actuated", cfg.Granule, true},
	} {
		v, err := run(c.name, c.window, c.actuate)
		if err != nil {
			return nil, err
		}
		out = append(out, *v)
	}
	return out, nil
}
