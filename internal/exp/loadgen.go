package exp

import (
	"encoding/json"
	"fmt"
	"math"
	"time"

	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// LoadgenOptions shapes the simulated sensor-network deployment shared
// by esploadgen and the netchaos harness: motes partitioned into
// spatial granules, lossy radios, and a seeded fraction of data-faulty
// sensors. The same options always generate the same workload.
type LoadgenOptions struct {
	Motes      int           // simulated motes (concurrent receptors)
	GroupSize  int           // motes per spatial granule
	Epochs     int           // epochs to replay
	Epoch      time.Duration // epoch length (simulated time)
	Delivery   float64       // per-epoch radio delivery probability
	FaultEvery int           // every Nth mote gets a fault schedule (0 = none)
	Seed       int64         // workload RNG seed
}

// DefaultLoadgenOptions is the canonical 1000-mote workload.
func DefaultLoadgenOptions() LoadgenOptions {
	return LoadgenOptions{
		Motes:      1000,
		GroupSize:  8,
		Epochs:     30,
		Epoch:      time.Second,
		Delivery:   0.9,
		FaultEvery: 10,
		Seed:       1,
	}
}

// Step is one epoch of pre-generated workload: the per-receptor
// readings to publish, then the boundary to advance to.
type Step struct {
	Pubs map[string][]stream.Tuple
	Now  time.Time
}

// MoteID is the receptor ID of the i'th simulated mote.
func MoteID(i int) string { return fmt.Sprintf("mote-%04d", i) }

// LoadgenSpec assembles the tenant spec for the loadgen deployment:
// motes partitioned into spatial granules of GroupSize, a smooth/merge
// averaging pipeline, and a channel cap sized for one epoch of
// readings.
func LoadgenSpec(o LoadgenOptions) []byte {
	groups := map[string]any{}
	var members []string
	gi := 0
	flush := func() {
		if len(members) > 0 {
			groups[fmt.Sprintf("cell-%03d", gi)] = map[string]any{"type": "mote", "members": members}
			members = nil
			gi++
		}
	}
	recs := make([]map[string]any, 0, o.Motes)
	for i := 0; i < o.Motes; i++ {
		id := MoteID(i)
		recs = append(recs, map[string]any{"id": id, "type": "mote", "schema": "mote_id:string,temp:float"})
		members = append(members, id)
		if len(members) == o.GroupSize {
			flush()
		}
	}
	flush()

	smoothWin := 5 * o.Epoch
	spec := map[string]any{
		"deployment": map[string]any{
			"epoch":  o.Epoch.String(),
			"groups": groups,
			"pipelines": map[string]any{
				"mote": map[string]any{
					"smooth": fmt.Sprintf("SELECT avg(temp) AS temp FROM smooth_input [Range By '%s']", smoothWin),
					"merge":  fmt.Sprintf("SELECT avg(temp) AS temp FROM merge_input [Range By '%s']", o.Epoch),
				},
			},
		},
		"receptors": recs,
		"quota":     map[string]any{"channel_cap": 4 * o.Motes},
	}
	b, err := json.Marshal(spec)
	if err != nil {
		panic(err)
	}
	return b
}

// LoadgenWorkload pre-generates every epoch's readings so all consumers
// of the workload replay byte-identical input. Each mote samples a
// diurnal temperature field with per-mote bias and Gaussian noise
// through a lossy radio (sim.Mote), once per epoch at mid-epoch; every
// FaultEvery'th mote is additionally wrapped in a seeded
// receptor.Faulty data-fault schedule (drops, link-layer duplicates,
// and a fail-dirty stuck sensor) so the replayed population misbehaves
// the way the paper's deployments did.
func LoadgenWorkload(o LoadgenOptions) (steps []Step, published int) {
	base := time.Unix(0, 0).UTC()
	motes := make([]receptor.Receptor, o.Motes)
	for i := range motes {
		bias := float64(i%17)*0.1 - 0.8
		m := sim.NewMote(o.Seed, MoteID(i), o.Delivery, sim.SensorModel{
			Name: "temp",
			Truth: func(now time.Time) float64 {
				day := float64(now.UnixNano()) / float64(24*time.Hour)
				return 18 + 8*math.Sin(2*math.Pi*day)
			},
			Bias:     bias,
			NoiseStd: 0.3,
		})
		if o.FaultEvery > 0 && i%o.FaultEvery == o.FaultEvery-1 {
			quarter := time.Duration(o.Epochs) * o.Epoch / 4
			motes[i] = receptor.NewFaulty(m, o.Seed+int64(i),
				receptor.Fault{Kind: receptor.FaultDrop, P: 0.5,
					From: base.Add(quarter), Until: base.Add(2 * quarter)},
				receptor.Fault{Kind: receptor.FaultDuplicate, P: 0.3,
					From: base.Add(2 * quarter), Until: base.Add(3 * quarter)},
				receptor.Fault{Kind: receptor.FaultStuck, Field: "temp", Value: stream.Float(120),
					From: base.Add(3 * quarter)},
			)
		} else {
			motes[i] = m
		}
	}
	for e := 1; e <= o.Epochs; e++ {
		st := Step{Pubs: make(map[string][]stream.Tuple), Now: base.Add(time.Duration(e) * o.Epoch)}
		sample := st.Now.Add(-o.Epoch / 2)
		for i, m := range motes {
			ts := m.Poll(sample)
			if len(ts) > 0 {
				st.Pubs[MoteID(i)] = ts
				published += len(ts)
			}
		}
		steps = append(steps, st)
	}
	return steps, published
}
