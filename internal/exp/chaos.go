package exp

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// ChaosConfig parameterises the chaos harness: the three example
// deployments run under seeded, schedule-driven fault injection with
// the supervised poller enabled, and every run is executed twice to
// assert seed-determinism.
type ChaosConfig struct {
	// Seed drives every fault injector and the supervisor's probe
	// jitter. The same seed always reproduces the same run.
	Seed int64
	// Short trims each deployment's duration (used by `go test -short`
	// and `make chaos`); the fault schedules still fit inside it.
	Short bool
}

// DefaultChaosConfig returns the seed the experiment binary uses.
func DefaultChaosConfig() ChaosConfig { return ChaosConfig{Seed: 41} }

// ChaosDeployment summarises one deployment's chaos run.
type ChaosDeployment struct {
	Name   string
	Epochs int
	// Outputs counts tuples emitted across all per-type outputs (and
	// Virtualize where bound).
	Outputs int
	// Transitions is the rendered health-transition log, in order.
	Transitions []string
	// Quarantined / Readmitted list receptors that were quarantined /
	// readmitted at least once; EndQuarantined those still out at the
	// end.
	Quarantined, Readmitted, EndQuarantined []string
	// NodePanics counts operator panics isolated by the DAG guard.
	NodePanics int64
	// Fingerprint hashes the full output + transition log; two runs of
	// the same seed must agree (asserted by RunChaos).
	Fingerprint uint64
}

// ChaosResult is the harness outcome over all deployments.
type ChaosResult struct {
	Deployments []ChaosDeployment
}

// chaosClock is the virtual wall clock shared by the supervisor's
// poll-latency guard and Faulty's SleepFn: a slow-poll fault advances
// it past the deadline, so "hangs" are detected deterministically.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosCase is one deployment under one fault schedule, plus the
// supervision outcome the schedule is engineered to produce.
type chaosCase struct {
	name string
	// run builds the deployment from scratch and executes it once.
	run func(cfg ChaosConfig) (*ChaosDeployment, error)
	// expected supervision outcome (exact ID sets).
	wantQuarantined, wantReadmitted, wantEndQuarantined []string
}

// RunChaos executes the chaos suite: every deployment runs twice under
// its fault schedule, and the harness asserts (a) no run crashes or
// stalls, (b) the scheduled quarantines and readmissions happened, and
// (c) both runs produced byte-identical output. Any violation is an
// error.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	res := &ChaosResult{}
	for _, cs := range chaosCases() {
		first, err := cs.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: %w", cs.name, err)
		}
		second, err := cs.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("chaos %s (rerun): %w", cs.name, err)
		}
		if first.Fingerprint != second.Fingerprint {
			return nil, fmt.Errorf("chaos %s: nondeterministic output: %x vs %x",
				cs.name, first.Fingerprint, second.Fingerprint)
		}
		if err := wantIDs(cs.name, "quarantined", first.Quarantined, cs.wantQuarantined); err != nil {
			return nil, err
		}
		if err := wantIDs(cs.name, "readmitted", first.Readmitted, cs.wantReadmitted); err != nil {
			return nil, err
		}
		if err := wantIDs(cs.name, "end-quarantined", first.EndQuarantined, cs.wantEndQuarantined); err != nil {
			return nil, err
		}
		first.Name = cs.name
		res.Deployments = append(res.Deployments, *first)
	}
	return res, nil
}

// wantIDs compares an observed ID set against the schedule's expectation.
func wantIDs(name, what string, got, want []string) error {
	g := append([]string(nil), got...)
	w := append([]string(nil), want...)
	sort.Strings(g)
	sort.Strings(w)
	if strings.Join(g, ",") != strings.Join(w, ",") {
		return fmt.Errorf("chaos %s: %s = [%s], want [%s]",
			name, what, strings.Join(g, ","), strings.Join(w, ","))
	}
	return nil
}

// chaosRecorder accumulates the output and transition log of one run
// and folds them into a fingerprint.
type chaosRecorder struct {
	start  time.Time
	lines  []string
	trans  []string
	tuples int
}

func (r *chaosRecorder) tuple(tag string, t stream.Tuple) {
	r.tuples++
	r.lines = append(r.lines, tag+":"+t.String())
}

func (r *chaosRecorder) transition(tr core.HealthTransition) {
	line := fmt.Sprintf("t=%s %s %s>%s (%s)",
		tr.At.Sub(r.start), tr.ReceptorID, tr.From, tr.To, tr.Cause)
	r.trans = append(r.trans, line)
	r.lines = append(r.lines, line)
}

func (r *chaosRecorder) fingerprint() uint64 {
	h := fnv.New64a()
	for _, l := range r.lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// summarize folds the processor's health and node stats into the
// deployment report.
func (r *chaosRecorder) summarize(p *core.Processor, epochs int) *ChaosDeployment {
	d := &ChaosDeployment{
		Epochs:      epochs,
		Outputs:     r.tuples,
		Transitions: r.trans,
		Fingerprint: r.fingerprint(),
	}
	for _, h := range p.HealthStats() {
		if h.Quarantines > 0 {
			d.Quarantined = append(d.Quarantined, h.ID)
		}
		if h.Readmits > 0 {
			d.Readmitted = append(d.Readmitted, h.ID)
		}
		if h.State == core.Quarantined {
			d.EndQuarantined = append(d.EndQuarantined, h.ID)
		}
	}
	for _, ns := range p.NodeStats() {
		d.NodePanics += ns.Panics
	}
	return d
}

// chaosCases builds the suite. Fault times are offsets from the run
// start (time.Unix(0,0)); each schedule is chosen so the quarantine /
// readmission arithmetic (SuspectAfter 2, backoff 4 epochs doubling)
// resolves well inside the run.
func chaosCases() []chaosCase {
	return []chaosCase{
		{
			name:               "shelf",
			run:                runChaosShelf,
			wantQuarantined:    []string{"reader1"},
			wantReadmitted:     []string{"reader1"},
			wantEndQuarantined: nil,
		},
		{
			name:               "lab",
			run:                runChaosLab,
			wantQuarantined:    []string{"mote2"},
			wantReadmitted:     nil,
			wantEndQuarantined: []string{"mote2"},
		},
		{
			name:               "home",
			run:                runChaosHome,
			wantQuarantined:    []string{"office-mote2", "office-x10-3"},
			wantReadmitted:     []string{"office-mote2"},
			wantEndQuarantined: []string{"office-x10-3"},
		},
	}
}

// chaosSupervise wires supervision + recorder with the harness's
// standard knobs (VirtualTime for determinism, 50 ms poll deadline on
// the injected clock, seeded probe jitter).
func chaosSupervise(p *core.Processor, cfg ChaosConfig, clock *chaosClock, rec *chaosRecorder) {
	p.EnableSupervision(core.SupervisorConfig{
		PollTimeout:  50 * time.Millisecond,
		SuspectAfter: 2,
		JitterFrac:   0.2,
		Seed:         cfg.Seed,
		Now:          clock.Now,
		VirtualTime:  true,
		OnTransition: rec.transition,
	})
}

// runChaosShelf: the §4 shelf deployment (2 readers, 200 ms epochs).
// reader0 silently drops 30 % of reads for 20 s; reader1's driver
// crashes on every poll for 5 s — it is quarantined after two panics
// and readmitted by the third backoff probe once the window ends.
func runChaosShelf(cfg ChaosConfig) (*ChaosDeployment, error) {
	sc, err := sim.NewShelfScenario(sim.DefaultShelfConfig())
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()
	at := func(d time.Duration) time.Time { return start.Add(d) }
	recs := sc.Receptors()
	recs[0] = receptor.NewFaulty(recs[0], cfg.Seed,
		receptor.Fault{Kind: receptor.FaultDrop, P: 0.3, From: at(10 * time.Second), Until: at(30 * time.Second)})
	recs[1] = receptor.NewFaulty(recs[1], cfg.Seed+1,
		receptor.Fault{Kind: receptor.FaultPanic, From: at(20 * time.Second), Until: at(25 * time.Second)})

	dep := &core.Deployment{
		Epoch:     sc.Config.PollPeriod,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: shelfPipeline(ModeSmoothArbitrate, 5*time.Second),
		},
		TieBreak: func(a, b stream.Tuple) bool {
			return a.Values[0] == stream.String("shelf1")
		},
	}
	duration := 60 * time.Second
	if cfg.Short {
		duration = 40 * time.Second
	}
	return runChaosDeployment(dep, cfg, start, duration, nil)
}

// runChaosLab: the §5.1 lab-room deployment (3 motes, 5 min epochs).
// mote2's battery dies for good at hour 4 (permanent quarantine: every
// backoff probe panics again); mote3 fails dirty — stuck at 85 °C —
// for three hours, which the supervisor must NOT flag (data faults are
// the cleaning stages' job, not the poller's).
func runChaosLab(cfg ChaosConfig) (*ChaosDeployment, error) {
	sc, err := sim.NewOutlierScenario(sim.DefaultOutlierConfig())
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()
	at := func(d time.Duration) time.Time { return start.Add(d) }
	recs := sc.Receptors()
	recs[1] = receptor.NewFaulty(recs[1], cfg.Seed+2,
		receptor.Fault{Kind: receptor.FaultDie, From: at(4 * time.Hour)})
	recs[2] = receptor.NewFaulty(recs[2], cfg.Seed+3,
		receptor.Fault{Kind: receptor.FaultStuck, Field: "temp", Value: stream.Float(85),
			From: at(2 * time.Hour), Until: at(5 * time.Hour)})

	dep := &core.Deployment{
		Epoch:     sc.Config.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:  receptor.TypeMote,
				Point: core.PointBelow("temp", 50),
				Merge: core.MergeOutlierAvg("temp", sc.Config.Epoch, 1.0),
			},
		},
	}
	duration := 9 * time.Hour
	if cfg.Short {
		duration = 6 * time.Hour
	}
	return runChaosDeployment(dep, cfg, start, duration, nil)
}

// runChaosHome: the §6 digital home (2 RFID readers, 3 sound motes,
// 3 motion detectors, 1 s epochs) with the full Virtualize person
// detector. reader1 duplicates half its reads for a minute; mote2's
// driver wedges (80 ms polls against a 50 ms deadline) for 30 s —
// quarantined, then readmitted; x10-3 dies for good, and the motion
// Merge runs MergeVoteLive so the voting quorum rescales from 2-of-3
// to 2-of-2 instead of starving against the dead detector.
func runChaosHome(cfg ChaosConfig) (*ChaosDeployment, error) {
	sc, err := sim.NewHomeScenario(sim.DefaultHomeConfig())
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()
	at := func(d time.Duration) time.Time { return start.Add(d) }
	clock := &chaosClock{t: start}
	recs := sc.Receptors()
	recs[1] = receptor.NewFaulty(recs[1], cfg.Seed+4,
		receptor.Fault{Kind: receptor.FaultDuplicate, P: 0.5, From: at(60 * time.Second), Until: at(120 * time.Second)})
	slow := receptor.NewFaulty(recs[3], cfg.Seed+5,
		receptor.Fault{Kind: receptor.FaultSlowPoll, Sleep: 80 * time.Millisecond,
			From: at(120 * time.Second), Until: at(150 * time.Second)})
	slow.SleepFn = clock.Sleep
	recs[3] = slow
	recs[7] = receptor.NewFaulty(recs[7], cfg.Seed+6,
		receptor.Fault{Kind: receptor.FaultDie, From: at(200 * time.Second)})

	granule := 10 * time.Second
	expectedTags := stream.MustTable(
		stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
		[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String(sim.BadgeTagID))},
	)
	dep := &core.Deployment{
		Epoch:     sc.Config.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Tables:    map[string]*stream.Table{"expected_tags": expectedTags},
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: {
				Type:   receptor.TypeRFID,
				Point:  core.Compose(core.PointChecksum("checksum_ok"), core.PointExpectedTags("tag_id", "expected_tags", "expected_tag")),
				Smooth: core.SmoothTagCount(granule),
				Merge:  core.MergeUnion(),
			},
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: core.SmoothAvg("noise", granule),
				Merge:  core.MergeAvg("noise", sc.Config.Epoch),
			},
			receptor.TypeMotion: {
				Type:   receptor.TypeMotion,
				Smooth: core.SmoothEvents(granule, 1),
				// Health-aware quorum: 0.6 of live members ≈ 2-of-3 while
				// the group is whole, 2-of-2 once x10-3 is quarantined.
				Merge: core.MergeVoteLive(sc.Config.Epoch, 0.6),
			},
		},
		Virtualize: &core.VirtualizeSpec{
			Query: core.PersonDetectorQuery(525, 2),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	}
	duration := 400 * time.Second
	if cfg.Short {
		duration = 300 * time.Second
	}
	return runChaosDeployment(dep, cfg, start, duration, clock)
}

// runChaosDeployment builds, supervises, runs, and summarises one
// deployment. A nil clock gets a private one (no slow-poll fault needs
// to share it).
func runChaosDeployment(dep *core.Deployment, cfg ChaosConfig, start time.Time, duration time.Duration, clock *chaosClock) (*ChaosDeployment, error) {
	if clock == nil {
		clock = &chaosClock{t: start}
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}
	rec := &chaosRecorder{start: start}
	chaosSupervise(p, cfg, clock, rec)
	for _, t := range []receptor.Type{receptor.TypeRFID, receptor.TypeMote, receptor.TypeMotion} {
		if _, ok := p.TypeSchema(t); !ok {
			continue
		}
		tag := string(t)
		p.OnType(t, func(tp stream.Tuple) { rec.tuple(tag, tp) })
	}
	if dep.Virtualize != nil {
		p.OnVirtualize(func(tp stream.Tuple) { rec.tuple("virt", tp) })
	}
	epochs := 0
	p.OnEpoch(func(time.Time) { epochs++ })
	if err := p.Run(start, start.Add(duration)); err != nil {
		return nil, err
	}
	return rec.summarize(p, epochs), nil
}
