package exp

import "testing"

// BenchmarkWideSchedSeq drives the full wide scheduler workload (48 legs,
// 12 merges, 144 epochs) under the sequential scheduler — the profiling
// entry point for pipeline hot-path work. ns/op includes deployment
// construction; the pipeline-only wall (what BENCH_batch.json and
// EXPERIMENTS.md report) is exposed as the ns/pipeline metric.
func BenchmarkWideSchedSeq(b *testing.B) {
	cfg := DefaultSchedConfig()
	var pipeline int64
	for i := 0; i < b.N; i++ {
		_, _, wall, err := RunWideSched(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		pipeline += wall.Nanoseconds()
	}
	b.ReportMetric(float64(pipeline)/float64(b.N), "ns/pipeline")
}
