package exp

import (
	"testing"
	"time"
)

// shortShelf shrinks the shelf experiment for unit tests.
func shortShelf() ShelfConfig {
	cfg := DefaultShelfConfig()
	cfg.Duration = 120 * time.Second
	return cfg
}

func TestShelfSmoothArbitrateBeatsRaw(t *testing.T) {
	raw := shortShelf()
	raw.Mode = ModeRaw
	rawRes, err := RunShelf(raw)
	if err != nil {
		t.Fatal(err)
	}
	full := shortShelf()
	full.Mode = ModeSmoothArbitrate
	fullRes, err := RunShelf(full)
	if err != nil {
		t.Fatal(err)
	}
	if fullRes.AvgRelErr >= rawRes.AvgRelErr/3 {
		t.Errorf("Smooth+Arbitrate err %.3f not ≪ raw %.3f", fullRes.AvgRelErr, rawRes.AvgRelErr)
	}
	if rawRes.AlertRate < 0.5 {
		t.Errorf("raw alert rate %.2f/s, want frequent false restock alerts", rawRes.AlertRate)
	}
	if fullRes.AlertRate != 0 {
		t.Errorf("cleaned alert rate %.2f/s, want 0", fullRes.AlertRate)
	}
}

func TestShelfTraceShape(t *testing.T) {
	cfg := shortShelf()
	cfg.KeepTrace = true
	res, err := RunShelf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Epochs {
		t.Fatalf("trace %d rows, epochs %d", len(res.Trace), res.Epochs)
	}
	for _, row := range res.Trace {
		if len(row.Reported) != 2 || len(row.Truth) != 2 {
			t.Fatalf("trace row %v", row)
		}
		for _, tr := range row.Truth {
			if tr != 10 && tr != 15 {
				t.Fatalf("truth %d, want 10 or 15", tr)
			}
		}
	}
}

// TestShelfTraceTracksRelocations checks the Figure 3(d) trace shape, not
// just its aggregate error: outside a bounded lag after each 40 s tag
// relocation, the cleaned counts must match the truth closely.
func TestShelfTraceTracksRelocations(t *testing.T) {
	cfg := DefaultShelfConfig()
	cfg.Duration = 170 * time.Second // spans four relocations
	cfg.KeepTrace = true
	res, err := RunShelf(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lag := cfg.Granule + 2*time.Second
	relocate := cfg.Sim.RelocateEvery
	stable, stableOK := 0, 0
	for _, row := range res.Trace {
		sinceReloc := row.T % relocate
		if sinceReloc < lag {
			continue // transition window: staleness expected
		}
		stable++
		ok := true
		for s := range row.Reported {
			d := row.Reported[s] - row.Truth[s]
			if d < -2 || d > 2 {
				ok = false
			}
		}
		if ok {
			stableOK++
		}
	}
	if stable == 0 {
		t.Fatal("no stable epochs evaluated")
	}
	frac := float64(stableOK) / float64(stable)
	if frac < 0.9 {
		t.Errorf("only %.1f%% of stable epochs within ±2 items of truth", 100*frac)
	}
}

func TestShelfAblationOrdering(t *testing.T) {
	res, err := RunShelfAblation(shortShelf())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(AllModes) {
		t.Fatalf("got %d results", len(res))
	}
	byMode := map[PipelineMode]float64{}
	for _, r := range res {
		byMode[r.Mode] = r.AvgRelErr
	}
	// Figure 5's qualitative ordering.
	if byMode[ModeSmoothArbitrate] >= byMode[ModeSmoothOnly] {
		t.Errorf("Smooth+Arbitrate (%.3f) should beat Smooth only (%.3f)",
			byMode[ModeSmoothArbitrate], byMode[ModeSmoothOnly])
	}
	if byMode[ModeSmoothOnly] >= byMode[ModeRaw] {
		t.Errorf("Smooth only (%.3f) should beat raw (%.3f)",
			byMode[ModeSmoothOnly], byMode[ModeRaw])
	}
	if byMode[ModeArbitrateOnly] < byMode[ModeRaw]*0.8 {
		t.Errorf("Arbitrate only (%.3f) should provide little benefit over raw (%.3f)",
			byMode[ModeArbitrateOnly], byMode[ModeRaw])
	}
	if byMode[ModeArbitrateSmooth] <= byMode[ModeSmoothArbitrate] {
		t.Errorf("reversed order (%.3f) should not beat the correct order (%.3f)",
			byMode[ModeArbitrateSmooth], byMode[ModeSmoothArbitrate])
	}
}

func TestGranuleSweepUShape(t *testing.T) {
	cfg := shortShelf()
	cfg.Duration = 160 * time.Second
	points, err := RunGranuleSweep(cfg, []time.Duration{
		200 * time.Millisecond, 5 * time.Second, 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %v", points)
	}
	tiny, best, huge := points[0].AvgRelErr, points[1].AvgRelErr, points[2].AvgRelErr
	if best >= tiny {
		t.Errorf("5s granule (%.3f) should beat 200ms (%.3f)", best, tiny)
	}
	if best >= huge {
		t.Errorf("5s granule (%.3f) should beat 60s (%.3f)", best, huge)
	}
}

func TestOutlierDetection(t *testing.T) {
	cfg := DefaultOutlierConfig()
	cfg.Duration = 30 * time.Hour
	cfg.Sim.FailStart = 5 * time.Hour
	res, err := RunOutlier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstEliminated < 0 {
		t.Fatal("outlier never eliminated")
	}
	if res.FirstEliminated < cfg.Sim.FailStart {
		t.Errorf("eliminated at %v, before failure at %v", res.FirstEliminated, cfg.Sim.FailStart)
	}
	// Merge must act before the Point threshold trips (paper's
	// observation: Merge is the first stage to eliminate the outlier).
	if res.PointFirstFiltered >= 0 && res.FirstEliminated >= res.PointFirstFiltered {
		t.Errorf("Merge eliminated at %v, after Point at %v", res.FirstEliminated, res.PointFirstFiltered)
	}
	if res.ESPWithin1C < 0.9 {
		t.Errorf("ESP within 1C = %.3f, want > 0.9", res.ESPWithin1C)
	}
	// ESP's worst case is an epoch where only the failing mote delivered
	// (the §5.3.2 failure mode); even then the naive average must be
	// substantially worse overall.
	if res.NaiveMaxErr < 3*res.ESPMaxErr {
		t.Errorf("naive max err %.1f should dwarf ESP max err %.1f", res.NaiveMaxErr, res.ESPMaxErr)
	}
}

func TestRedwoodYieldLadder(t *testing.T) {
	cfg := DefaultRedwoodConfig()
	cfg.Duration = 24 * time.Hour
	cfg.Sim.Motes = 12
	res, err := RunRedwoodYield(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawYield < 0.3 || res.RawYield > 0.5 {
		t.Errorf("raw yield = %.3f, want ~0.4", res.RawYield)
	}
	if res.SmoothYield <= res.RawYield {
		t.Errorf("Smooth yield %.3f should exceed raw %.3f", res.SmoothYield, res.RawYield)
	}
	if res.MergeYield <= res.SmoothYield {
		t.Errorf("Merge yield %.3f should exceed Smooth %.3f", res.MergeYield, res.SmoothYield)
	}
	if res.SmoothWithinTol < 0.95 {
		t.Errorf("Smooth accuracy = %.3f, want near 1", res.SmoothWithinTol)
	}
	// Merge trades a little accuracy for yield.
	if res.MergeWithinTol > res.SmoothWithinTol {
		t.Errorf("Merge accuracy %.3f should not exceed Smooth accuracy %.3f",
			res.MergeWithinTol, res.SmoothWithinTol)
	}
	if res.MergeWithinTol < 0.8 {
		t.Errorf("Merge accuracy = %.3f collapsed", res.MergeWithinTol)
	}
}

func TestSpatialSweepTradeoff(t *testing.T) {
	cfg := DefaultRedwoodConfig()
	cfg.Duration = 24 * time.Hour
	cfg.Sim.Motes = 16
	points, err := RunSpatialSweep(cfg, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	if points[1].MergeYield <= points[0].MergeYield {
		t.Errorf("bigger groups should raise yield: %v", points)
	}
	if points[1].WithinTol >= points[0].WithinTol {
		t.Errorf("bigger groups should cost accuracy: %v", points)
	}
}

func TestDigitalHomeAccuracy(t *testing.T) {
	cfg := DefaultHomeConfig()
	cfg.KeepTrace = true
	res, err := RunDigitalHome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.85 || res.Accuracy > 0.99 {
		t.Errorf("accuracy = %.3f, want ~0.92 (generally approximating reality, not perfect)", res.Accuracy)
	}
	if len(res.Trace) != res.Epochs {
		t.Errorf("trace %d rows for %d epochs", len(res.Trace), res.Epochs)
	}
	// Errors should be dominated by smoothing lag after the person
	// leaves (false positives), not missed presence.
	if res.FalseNegatives > res.FalsePositives {
		t.Errorf("fn=%d > fp=%d; expected lag-dominated errors", res.FalseNegatives, res.FalsePositives)
	}
}

func TestPipelineModeString(t *testing.T) {
	for _, m := range AllModes {
		if m.String() == "" {
			t.Errorf("mode %d has empty name", m)
		}
	}
}
