package exp

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/stream"
)

// SchedConfig parameterises the scheduler comparison: a deliberately wide
// deployment (many independent legs at the same DAG depth) where the
// ParallelScheduler has real work to fan out. All receptor data is
// pre-generated deterministically, so runs are byte-identical regardless
// of scheduler or worker count.
type SchedConfig struct {
	// Receptors is the total device count (they form Receptors/GroupSize
	// proximity groups, each with its own Merge node).
	Receptors int
	// GroupSize is the proximity-group width.
	GroupSize int
	// SamplesPerEpoch is how many readings each receptor delivers per
	// epoch — raising it makes each leg's windowed Smooth heavier, which
	// is what parallel execution amortises.
	SamplesPerEpoch int
	// Epoch and Duration size the run; SmoothWindow is the temporal
	// granule expansion (as in §5.2.1).
	Epoch, Duration, SmoothWindow time.Duration
	// Workers bounds the ParallelScheduler pool (<=0 means GOMAXPROCS).
	Workers int
}

// DefaultSchedConfig is wide enough (48 legs + 12 merges) that the
// sequential advance loop dominates an epoch.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{
		Receptors:       48,
		GroupSize:       4,
		SamplesPerEpoch: 16,
		Epoch:           5 * time.Minute,
		Duration:        12 * time.Hour,
		SmoothWindow:    30 * time.Minute,
	}
}

// BuildWideDeployment constructs the comparison deployment: one mote-type
// pipeline (SmoothAvg + MergeAvg) over Receptors replay devices emitting
// a deterministic sinusoid. Each call returns fresh replay receptors, so
// build once per run.
func BuildWideDeployment(cfg SchedConfig) (*core.Deployment, error) {
	if cfg.Receptors <= 0 || cfg.GroupSize <= 0 || cfg.SamplesPerEpoch <= 0 {
		return nil, fmt.Errorf("exp: sched config must be positive: %+v", cfg)
	}
	schema := stream.MustSchema(stream.Field{Name: "temp", Kind: stream.KindFloat})
	start := time.Unix(0, 0).UTC()
	epochs := int(cfg.Duration / cfg.Epoch)
	groups := receptor.NewGroups()
	recs := make([]receptor.Receptor, cfg.Receptors)
	var members []string
	granule := 0
	for i := 0; i < cfg.Receptors; i++ {
		id := fmt.Sprintf("wide%03d", i)
		tuples := make([]stream.Tuple, 0, epochs*cfg.SamplesPerEpoch)
		for e := 0; e < epochs; e++ {
			epochStart := start.Add(time.Duration(e) * cfg.Epoch)
			for s := 0; s < cfg.SamplesPerEpoch; s++ {
				ts := epochStart.Add(time.Duration(s+1) * cfg.Epoch / time.Duration(cfg.SamplesPerEpoch+1))
				v := 20 + 5*math.Sin(float64(e*cfg.SamplesPerEpoch+s)/37) + 0.1*float64(i%7)
				tuples = append(tuples, stream.NewTuple(ts, stream.Float(v)))
			}
		}
		recs[i] = receptor.NewReplay(id, receptor.TypeMote, schema, tuples)
		members = append(members, id)
		if len(members) == cfg.GroupSize || i == cfg.Receptors-1 {
			groups.MustAdd(receptor.Group{
				Name:    fmt.Sprintf("granule%02d", granule),
				Type:    receptor.TypeMote,
				Members: members,
			})
			granule++
			members = nil
		}
	}
	return &core.Deployment{
		Epoch:     cfg.Epoch,
		Receptors: recs,
		Groups:    groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: core.SmoothAvg("temp", cfg.SmoothWindow),
				Merge:  core.MergeAvg("temp", cfg.Epoch),
			},
		},
	}, nil
}

// RunWideSched drives one freshly built wide deployment under the given
// scheduler and returns the sink-output fingerprint (tuple count and a
// positional checksum of every emitted value) plus the wall time.
func RunWideSched(cfg SchedConfig, sched core.Scheduler) (count int, checksum float64, wall time.Duration, err error) {
	return runWideSched(cfg, sched, nil)
}

// runWideSched is RunWideSched with a deployment hook: tune (when
// non-nil) adjusts the built deployment before the processor is
// constructed — the batch experiment uses it to pin the tuple path.
func runWideSched(cfg SchedConfig, sched core.Scheduler, tune func(*core.Deployment)) (count int, checksum float64, wall time.Duration, err error) {
	dep, err := BuildWideDeployment(cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	if tune != nil {
		tune(dep)
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return 0, 0, 0, err
	}
	p.SetScheduler(sched)
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		count++
		for i, v := range tu.Values {
			if v.Kind() == stream.KindFloat {
				checksum += float64(count*(i+1)) * v.AsFloat()
			}
		}
	})
	start := time.Unix(0, 0).UTC()
	// Collect the build-phase garbage (the replayed samples alone are
	// megabytes) so the timed section measures the pipeline's own
	// allocation behaviour, not the deployment builder's.
	runtime.GC()
	t0 := time.Now()
	if err := p.Run(start, start.Add(cfg.Duration)); err != nil {
		return 0, 0, 0, err
	}
	return count, checksum, time.Since(t0), nil
}

// SchedResult summarises one sequential-vs-parallel comparison.
type SchedResult struct {
	Receptors, Groups, Epochs, Workers int
	SeqWall, ParWall                   time.Duration
	// Speedup is SeqWall/ParWall (>1 means parallel won).
	Speedup float64
	// OutputTuples is the sink tuple count (identical across schedulers).
	OutputTuples int
	// Identical reports whether the two runs produced the same sink
	// fingerprint — the determinism guarantee, re-checked here.
	Identical bool
}

// RunSchedulerComparison times the wide deployment under SeqScheduler and
// ParallelScheduler and cross-checks their output fingerprints.
func RunSchedulerComparison(cfg SchedConfig) (*SchedResult, error) {
	seqN, seqSum, seqWall, err := RunWideSched(cfg, core.SeqScheduler{})
	if err != nil {
		return nil, err
	}
	par := core.NewParallelScheduler(cfg.Workers)
	defer par.Close()
	parN, parSum, parWall, err := RunWideSched(cfg, par)
	if err != nil {
		return nil, err
	}
	res := &SchedResult{
		Receptors:    cfg.Receptors,
		Groups:       (cfg.Receptors + cfg.GroupSize - 1) / cfg.GroupSize,
		Epochs:       int(cfg.Duration / cfg.Epoch),
		Workers:      par.Workers(),
		SeqWall:      seqWall,
		ParWall:      parWall,
		OutputTuples: seqN,
		Identical:    seqN == parN && seqSum == parSum,
	}
	if parWall > 0 {
		res.Speedup = float64(seqWall) / float64(parWall)
	}
	if !res.Identical {
		return res, fmt.Errorf("exp: scheduler outputs diverged: seq %d tuples (checksum %g) vs parallel %d (%g)",
			seqN, seqSum, parN, parSum)
	}
	return res, nil
}
