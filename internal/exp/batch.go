package exp

import (
	"fmt"
	"time"

	"esp/internal/core"
)

// BatchConfig parameterises the columnar-execution experiment: the wide
// scheduler workload run with the columnar batch path and the CQL plan
// optimizer enabled (the defaults) versus both disabled (row-at-a-time
// tuples, naive plans) — same deterministic input, wall time only.
type BatchConfig struct {
	Sched SchedConfig
	// Repeats is how many times each mode runs; the minimum wall time is
	// kept (least-noise estimator).
	Repeats int
}

// DefaultBatchConfig reuses the wide scheduler workload so the committed
// BENCH_batch.json is directly comparable to BENCH_baseline.json and the
// sched experiment.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{Sched: DefaultSchedConfig(), Repeats: 3}
}

// BatchModeResult is one execution mode's measurement.
type BatchModeResult struct {
	Mode string `json:"mode"` // "tuple" (batching+optimizer off) or "batch"
	// WallNs is the minimum wall time over Repeats runs.
	WallNs int64 `json:"wall_ns"`
	// NsPerEpoch is WallNs / Epochs.
	NsPerEpoch int64 `json:"ns_per_epoch"`
}

// BatchResult is the whole experiment, serialised into BENCH_batch.json.
type BatchResult struct {
	Experiment string            `json:"experiment"`
	Receptors  int               `json:"receptors"`
	Groups     int               `json:"groups"`
	Epochs     int               `json:"epochs"`
	Repeats    int               `json:"repeats"`
	Modes      []BatchModeResult `json:"modes"`
	// Speedup is tuple wall / batch wall (>1 means the columnar path won).
	Speedup float64 `json:"speedup"`
	// OutputTuples is the sink tuple count (identical across modes).
	OutputTuples int `json:"output_tuples"`
	// Identical reports whether both modes produced the same sink
	// fingerprint — the oracle's batched-vs-tuple guarantee, re-checked
	// here on the benchmark workload.
	Identical bool `json:"identical"`
}

// RunBatchComparison times the wide deployment with columnar batching
// and the plan optimizer on versus off and cross-checks the output
// fingerprints.
func RunBatchComparison(cfg BatchConfig) (*BatchResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	type mode struct {
		name string
		tune func(*core.Deployment)
	}
	modes := []mode{
		{"tuple", func(d *core.Deployment) { d.DisableBatching = true; d.DisableOptimizer = true }},
		{"batch", nil},
	}
	res := &BatchResult{
		Experiment: "batch",
		Receptors:  cfg.Sched.Receptors,
		Groups:     (cfg.Sched.Receptors + cfg.Sched.GroupSize - 1) / cfg.Sched.GroupSize,
		Epochs:     int(cfg.Sched.Duration / cfg.Sched.Epoch),
		Repeats:    cfg.Repeats,
	}
	var counts [2]int
	var sums [2]float64
	var walls [2]time.Duration
	for i, m := range modes {
		var best time.Duration
		for r := 0; r < cfg.Repeats; r++ {
			n, sum, wall, err := runWideSched(cfg.Sched, core.SeqScheduler{}, m.tune)
			if err != nil {
				return nil, fmt.Errorf("exp: batch %s: %w", m.name, err)
			}
			if best == 0 || wall < best {
				best = wall
			}
			counts[i], sums[i] = n, sum
		}
		walls[i] = best
		mr := BatchModeResult{Mode: m.name, WallNs: best.Nanoseconds()}
		if res.Epochs > 0 {
			mr.NsPerEpoch = mr.WallNs / int64(res.Epochs)
		}
		res.Modes = append(res.Modes, mr)
	}
	res.OutputTuples = counts[1]
	res.Identical = counts[0] == counts[1] && sums[0] == sums[1]
	if walls[1] > 0 {
		res.Speedup = float64(walls[0]) / float64(walls[1])
	}
	if !res.Identical {
		return res, fmt.Errorf("exp: batch modes diverged: tuple %d tuples (checksum %g) vs batch %d (%g)",
			counts[0], sums[0], counts[1], sums[1])
	}
	return res, nil
}
