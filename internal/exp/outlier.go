package exp

import (
	"time"

	"esp/internal/core"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// OutlierConfig parameterises the §5.1 fail-dirty experiment (Figure 7).
type OutlierConfig struct {
	Sim sim.OutlierConfig
	// Duration is the trace length (2 days in Figure 7).
	Duration time.Duration
	// PointLimit is the Point-stage filter (50 °C in Query 4).
	PointLimit float64
	// Sigma is the Merge-stage outlier bound in standard deviations.
	Sigma float64
	// KeepTrace retains the per-epoch series for the figure.
	KeepTrace bool
}

// DefaultOutlierConfig matches the paper.
func DefaultOutlierConfig() OutlierConfig {
	return OutlierConfig{
		Sim:        sim.DefaultOutlierConfig(),
		Duration:   48 * time.Hour,
		PointLimit: 50,
		Sigma:      1.0,
		KeepTrace:  true,
	}
}

// OutlierEpoch is one evaluation step of the outlier experiment.
type OutlierEpoch struct {
	T time.Duration
	// Motes holds each mote's delivered reading (NaN when lost).
	Motes []float64
	// NaiveAvg averages all delivered readings, outlier included — the
	// "Average" line of Figure 7.
	NaiveAvg float64
	// ESP is the pipeline output (NaN if none emitted this epoch).
	ESP float64
	// Truth is the room's true temperature.
	Truth float64
}

// OutlierResult summarises the fail-dirty experiment.
type OutlierResult struct {
	// FirstEliminated is when the Merge stage first rejected the
	// fail-dirty mote ("ESP begins to eliminate outlier" in Figure 7).
	FirstEliminated time.Duration
	// PointFirstFiltered is when the Point stage first dropped a reading
	// (the outlier crossing 50 °C).
	PointFirstFiltered time.Duration
	// ESPWithin1C is the fraction of post-failure epochs where the ESP
	// output stayed within 1 °C of the truth.
	ESPWithin1C float64
	// NaiveMaxErr / ESPMaxErr are the worst absolute errors after the
	// failure begins.
	NaiveMaxErr, ESPMaxErr float64
	Trace                  []OutlierEpoch
}

// RunOutlier reproduces Figure 7: three motes in one proximity group, one
// failing dirty; Point (temp < 50) plus Merge (reject beyond avg±σ·stdev,
// then average) track the functioning motes while the naive average is
// dragged away.
func RunOutlier(cfg OutlierConfig) (*OutlierResult, error) {
	sc, err := sim.NewOutlierScenario(cfg.Sim)
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()

	// Pre-generate delivered traces so the harness can compute the naive
	// average from exactly the readings the pipeline saw.
	epochs := int(cfg.Duration / cfg.Sim.Epoch)
	delivered := make([][]float64, len(sc.Motes)) // NaN = lost
	var replays []receptor.Receptor
	for i, m := range sc.Motes {
		delivered[i] = make([]float64, epochs)
		var tuples []stream.Tuple
		for e := 0; e < epochs; e++ {
			now := start.Add(time.Duration(e+1) * cfg.Sim.Epoch)
			t, ok := m.PollLogged(now)
			if ok {
				delivered[i][e] = t.Values[1].AsFloat()
				tuples = append(tuples, t)
			} else {
				delivered[i][e] = nan()
			}
		}
		replays = append(replays, receptor.NewReplay(m.ID(), receptor.TypeMote, m.Schema(), tuples))
	}

	dep := &core.Deployment{
		Epoch:     cfg.Sim.Epoch,
		Receptors: replays,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:  receptor.TypeMote,
				Point: core.PointBelow("temp", cfg.PointLimit),
				Merge: core.MergeOutlierAvg("temp", cfg.Sim.Epoch, cfg.Sigma),
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}
	sch, _ := p.TypeSchema(receptor.TypeMote)
	tempIx := sch.MustIndex("temp")

	esp := make([]float64, epochs)
	for e := range esp {
		esp[e] = nan()
	}
	curEpoch := 0
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		esp[curEpoch] = tu.Values[tempIx].AsFloat()
	})

	res := &OutlierResult{FirstEliminated: -1, PointFirstFiltered: -1}
	var espVals, truthVals []float64
	failStart := cfg.Sim.FailStart

	for e := 0; e < epochs; e++ {
		curEpoch = e
		now := start.Add(time.Duration(e+1) * cfg.Sim.Epoch)
		if err := p.Step(now); err != nil {
			return nil, err
		}
		truth := sc.Truth(now)
		naive, included := naiveAvg(delivered, e)
		t := now.Sub(start)

		if res.PointFirstFiltered < 0 && !isNaN(delivered[0][e]) && delivered[0][e] >= cfg.PointLimit {
			res.PointFirstFiltered = t
		}
		// The outlier is "eliminated" once the pipeline output ignores a
		// delivered outlier reading that the naive average includes.
		if res.FirstEliminated < 0 && t > failStart && included && !isNaN(esp[e]) &&
			abs(esp[e]-truth) < abs(naive-truth)-0.5 {
			res.FirstEliminated = t
		}
		if t > failStart {
			if !isNaN(esp[e]) {
				espVals = append(espVals, esp[e])
				truthVals = append(truthVals, truth)
				if d := abs(esp[e] - truth); d > res.ESPMaxErr {
					res.ESPMaxErr = d
				}
			}
			if !isNaN(naive) {
				if d := abs(naive - truth); d > res.NaiveMaxErr {
					res.NaiveMaxErr = d
				}
			}
		}
		if cfg.KeepTrace {
			row := OutlierEpoch{T: t, NaiveAvg: naive, ESP: esp[e], Truth: truth}
			for i := range delivered {
				row.Motes = append(row.Motes, delivered[i][e])
			}
			res.Trace = append(res.Trace, row)
		}
	}
	if res.ESPWithin1C, err = metrics.WithinTolerance(espVals, truthVals, 1); err != nil {
		return nil, err
	}
	return res, nil
}

// naiveAvg averages the delivered readings of epoch e; included reports
// whether the fail-dirty mote (index 0) contributed.
func naiveAvg(delivered [][]float64, e int) (avg float64, outlierIncluded bool) {
	var sum float64
	n := 0
	for i := range delivered {
		v := delivered[i][e]
		if isNaN(v) {
			continue
		}
		sum += v
		n++
		if i == 0 {
			outlierIncluded = true
		}
	}
	if n == 0 {
		return nan(), false
	}
	return sum / float64(n), outlierIncluded
}
