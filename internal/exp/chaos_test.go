package exp

import "testing"

// TestChaosSuite runs the full chaos harness: RunChaos itself asserts
// no crash, the scheduled quarantines/readmissions, and determinism,
// so the test mostly checks the summary shape.
func TestChaosSuite(t *testing.T) {
	cfg := DefaultChaosConfig()
	cfg.Short = testing.Short()
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deployments) != 3 {
		t.Fatalf("got %d deployments, want 3", len(res.Deployments))
	}
	for _, d := range res.Deployments {
		if d.Epochs == 0 || d.Outputs == 0 {
			t.Errorf("%s: empty run (epochs=%d outputs=%d)", d.Name, d.Epochs, d.Outputs)
		}
		if len(d.Transitions) == 0 {
			t.Errorf("%s: no health transitions recorded", d.Name)
		}
	}
	// Only the home deployment schedules a hang; its slow-poll window
	// must surface as timeouts, not panics.
	home := res.Deployments[2]
	if home.Name != "home" {
		t.Fatalf("deployment order changed: %s", home.Name)
	}
}

// TestChaosSeedSensitivity: different seeds must produce different
// fault realisations (fingerprints differ) while still satisfying the
// schedule-level assertions.
func TestChaosSeedSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("long: runs the suite twice")
	}
	a, err := RunChaos(ChaosConfig{Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ChaosConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Deployments {
		if a.Deployments[i].Fingerprint != b.Deployments[i].Fingerprint {
			diff = true
		}
	}
	if !diff {
		t.Fatal("seeds 41 and 42 produced identical fingerprints for every deployment")
	}
}
