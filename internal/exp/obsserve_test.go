package exp

import "testing"

// TestObsServeSmoke runs the serving-observability experiment at toy
// scale: every leg, every non-timing gate (allocation-free disabled
// path, fingerprint identity across tracing modes, sampled spans
// present, one trace ID end to end). The timing-noise gate is skipped —
// a 50-mote workload's wall time is all noise.
func TestObsServeSmoke(t *testing.T) {
	cfg := ObsServeConfig{
		Load: LoadgenOptions{
			Motes:      50,
			GroupSize:  5,
			Epochs:     6,
			Epoch:      DefaultLoadgenOptions().Epoch,
			Delivery:   0.9,
			FaultEvery: 10,
			Seed:       1,
		},
		Publishers:     4,
		Repeats:        1,
		SampleN:        4,
		Seed:           7,
		SkipTimingGate: true,
	}
	res, err := RunObsServe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Legs) != 4 {
		t.Fatalf("legs = %d, want 4", len(res.Legs))
	}
	if !res.FingerprintMatch {
		t.Error("fingerprints diverged across tracing modes")
	}
	if !res.TraceIDEndToEnd {
		t.Error("no trace ID observed end to end")
	}
	if res.DisabledAllocsPerFrame > 0.01 {
		t.Errorf("disabled path allocates: %.4f allocs/frame", res.DisabledAllocsPerFrame)
	}
	if res.Legs[0].Spans != 0 || res.Legs[1].Spans != 0 {
		t.Errorf("off legs recorded spans: %+v", res.Legs[:2])
	}
	if res.Legs[2].Spans == 0 {
		t.Errorf("sampled leg recorded no spans: %+v", res.Legs[2])
	}
	if res.Legs[3].Spans <= res.Legs[2].Spans {
		t.Errorf("full leg (%d spans) should out-trace sampled leg (%d spans)",
			res.Legs[3].Spans, res.Legs[2].Spans)
	}
	for _, l := range res.Legs {
		if l.WallNs <= 0 {
			t.Errorf("leg %s wall time %d", l.Mode, l.WallNs)
		}
	}
}
