package exp

import (
	"fmt"
	"strings"
	"time"

	"esp/internal/core"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// ObsConfig parameterises the telemetry-overhead experiment: the three
// paper deployments (shelf RFID, redwood lab motes, digital home) are
// each run with telemetry off, with counters + histograms enabled, and
// with counters + sampled lineage — same workload, wall time only.
type ObsConfig struct {
	// Repeats is how many times each (deployment, mode) cell is run;
	// the minimum wall time is kept (least-noise estimator).
	Repeats int
	// LineageSampleN samples ~1/N readings when lineage is enabled.
	LineageSampleN int
	// Seed overrides the scenario seeds when non-zero.
	Seed int64
}

// DefaultObsConfig keeps the experiment under a few seconds while
// staying above timer resolution on every deployment.
func DefaultObsConfig() ObsConfig {
	return ObsConfig{Repeats: 3, LineageSampleN: 64}
}

// ObsModeResult is one (deployment, telemetry mode) measurement.
type ObsModeResult struct {
	Mode string `json:"mode"` // "off", "counters", "lineage"
	// WallNs is the minimum wall time over Repeats runs.
	WallNs int64 `json:"wall_ns"`
	// NsPerEpoch is WallNs / Epochs.
	NsPerEpoch int64 `json:"ns_per_epoch"`
	// Overhead is (Wall - WallOff) / WallOff; zero for the off mode.
	Overhead float64 `json:"overhead"`
	// TuplesIn sums node input counters after the run (0 when off) — a
	// sanity check that the instrumentation actually observed traffic.
	TuplesIn int64 `json:"tuples_in"`
	// LineageTraces is the number of sampled traces (lineage mode only).
	LineageTraces int `json:"lineage_traces,omitempty"`
}

// ObsDeploymentResult is the overhead profile of one deployment.
type ObsDeploymentResult struct {
	Name      string          `json:"name"`
	Receptors int             `json:"receptors"`
	Epochs    int             `json:"epochs"`
	Modes     []ObsModeResult `json:"modes"`
	// DisabledOverhead is the relative wall-time difference between two
	// independent telemetry-off measurement sets — the measurable cost
	// of the disabled instrumentation (its gate is one atomic load per
	// epoch), which is indistinguishable from run-to-run noise.
	DisabledOverhead float64 `json:"disabled_overhead"`
}

// ObsResult is the whole experiment, serialised into BENCH_obs.json.
type ObsResult struct {
	Experiment  string                `json:"experiment"`
	Repeats     int                   `json:"repeats"`
	SampleN     int                   `json:"lineage_sample_n"`
	Deployments []ObsDeploymentResult `json:"deployments"`
}

// BaselinePoint is one deployment's telemetry-off wall time, serialised
// into BENCH_baseline.json as the reference for future perf work.
type BaselinePoint struct {
	Name       string `json:"name"`
	Receptors  int    `json:"receptors"`
	Epochs     int    `json:"epochs"`
	WallNs     int64  `json:"wall_ns"`
	NsPerEpoch int64  `json:"ns_per_epoch"`
}

// BaselineResult is the telemetry-off wall-time profile of the three
// paper deployments.
type BaselineResult struct {
	Experiment  string          `json:"experiment"`
	Repeats     int             `json:"repeats"`
	Deployments []BaselinePoint `json:"deployments"`
}

// RunObsBaseline measures only the telemetry-off configuration — the
// reference profile committed as BENCH_baseline.json.
func RunObsBaseline(cfg ObsConfig) (*BaselineResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	res := &BaselineResult{Experiment: "baseline", Repeats: cfg.Repeats}
	for _, d := range obsDeployments(cfg.Seed) {
		var best time.Duration
		var epochs int
		var receptors int
		for r := 0; r < cfg.Repeats; r++ {
			wall, ep, _, _, err := obsRun(d, "off", cfg)
			if err != nil {
				return nil, fmt.Errorf("exp: baseline %s: %w", d.name, err)
			}
			if best == 0 || wall < best {
				best, epochs = wall, ep
			}
		}
		if dep, err := d.build(); err == nil {
			receptors = len(dep.Receptors)
		}
		pt := BaselinePoint{Name: d.name, Receptors: receptors, Epochs: epochs, WallNs: best.Nanoseconds()}
		if epochs > 0 {
			pt.NsPerEpoch = pt.WallNs / int64(epochs)
		}
		res.Deployments = append(res.Deployments, pt)
	}
	return res, nil
}

// obsDeployment describes one measurable workload: Build returns a
// fresh deployment (fresh receptors, same seed) for every run so all
// modes see byte-identical input.
type obsDeployment struct {
	name     string
	build    func() (*core.Deployment, error)
	duration time.Duration
}

// obsDeployments builds the three paper workloads at their default
// evaluation sizes (shelf §4, redwood lab §5.2, digital home §6).
func obsDeployments(seed int64) []obsDeployment {
	return []obsDeployment{
		{
			name:     "shelf",
			duration: 700 * time.Second,
			build: func() (*core.Deployment, error) {
				cfg := sim.DefaultShelfConfig()
				if seed != 0 {
					cfg.Seed = seed
				}
				sc, err := sim.NewShelfScenario(cfg)
				if err != nil {
					return nil, err
				}
				return &core.Deployment{
					Epoch:     cfg.PollPeriod,
					Receptors: sc.Receptors(),
					Groups:    sc.Groups,
					Pipelines: map[receptor.Type]*core.Pipeline{
						receptor.TypeRFID: shelfPipeline(ModeSmoothArbitrate, 5*time.Second),
					},
				}, nil
			},
		},
		{
			name:     "lab",
			duration: 84 * time.Hour,
			build: func() (*core.Deployment, error) {
				cfg := sim.DefaultRedwoodConfig()
				if seed != 0 {
					cfg.Seed = seed
				}
				sc, err := sim.NewRedwoodScenario(cfg)
				if err != nil {
					return nil, err
				}
				recs := make([]receptor.Receptor, len(sc.Motes))
				for i, m := range sc.Motes {
					recs[i] = m
				}
				return &core.Deployment{
					Epoch:     cfg.Epoch,
					Receptors: recs,
					Groups:    sc.Groups,
					Pipelines: map[receptor.Type]*core.Pipeline{
						receptor.TypeMote: {
							Type:   receptor.TypeMote,
							Smooth: core.SmoothAvg("temp", 30*time.Minute),
							Merge:  core.MergeAvg("temp", cfg.Epoch),
						},
					},
				}, nil
			},
		},
		{
			name:     "home",
			duration: 600 * time.Second,
			build: func() (*core.Deployment, error) {
				cfg := sim.DefaultHomeConfig()
				if seed != 0 {
					cfg.Seed = seed
				}
				sc, err := sim.NewHomeScenario(cfg)
				if err != nil {
					return nil, err
				}
				expectedTags := stream.MustTable(
					stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
					[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String(sim.BadgeTagID))},
				)
				granule := 10 * time.Second
				return &core.Deployment{
					Epoch:     cfg.Epoch,
					Receptors: sc.Receptors(),
					Groups:    sc.Groups,
					Tables:    map[string]*stream.Table{"expected_tags": expectedTags},
					Pipelines: map[receptor.Type]*core.Pipeline{
						receptor.TypeRFID: {
							Type:   receptor.TypeRFID,
							Point:  core.Compose(core.PointChecksum("checksum_ok"), core.PointExpectedTags("tag_id", "expected_tags", "expected_tag")),
							Smooth: core.SmoothTagCount(granule),
							Merge:  core.MergeUnion(),
						},
						receptor.TypeMote: {
							Type:   receptor.TypeMote,
							Smooth: core.SmoothAvg("noise", granule),
							Merge:  core.MergeAvg("noise", cfg.Epoch),
						},
						receptor.TypeMotion: {
							Type:   receptor.TypeMotion,
							Smooth: core.SmoothEvents(granule, 1),
							Merge:  core.MergeVote(cfg.Epoch, 2),
						},
					},
					Virtualize: &core.VirtualizeSpec{
						Query: core.PersonDetectorQuery(525, 2),
						Bind: map[string]receptor.Type{
							"sensors_input": receptor.TypeMote,
							"rfid_input":    receptor.TypeRFID,
							"motion_input":  receptor.TypeMotion,
						},
					},
				}, nil
			},
		},
	}
}

// obsRun builds a fresh processor in the given telemetry mode, drives it
// over the deployment's full duration, and reports wall time plus the
// instrumentation's own view of the traffic.
func obsRun(d obsDeployment, mode string, cfg ObsConfig) (wall time.Duration, epochs int, tuplesIn int64, traces int, err error) {
	dep, err := d.build()
	if err != nil {
		return 0, 0, 0, 0, err
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	switch mode {
	case "counters":
		p.EnableTelemetry()
	case "lineage":
		p.EnableLineage(cfg.LineageSampleN, 1)
	}
	// Swallow output: the workload is the pipeline, not the sink.
	for typ := range dep.Pipelines {
		p.OnType(typ, func(stream.Tuple) {})
	}

	start := time.Unix(0, 0).UTC()
	t0 := time.Now()
	if err := p.Run(start, start.Add(d.duration)); err != nil {
		return 0, 0, 0, 0, err
	}
	wall = time.Since(t0)
	epochs = int(d.duration / dep.Epoch)

	if mode != "off" {
		for name, c := range p.Telemetry().Snapshot().Counters {
			if strings.HasPrefix(name, "node.") && strings.HasSuffix(name, ".tuples_in") {
				tuplesIn += c
			}
		}
	}
	if lin := p.Lineage(); lin != nil {
		traces = lin.Len()
	}
	return wall, epochs, tuplesIn, traces, nil
}

// RunObs measures the telemetry overhead matrix. Each cell is run
// cfg.Repeats times and the minimum wall time kept; overheads are
// relative to the telemetry-off minimum.
func RunObs(cfg ObsConfig) (*ObsResult, error) {
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	if cfg.LineageSampleN <= 0 {
		cfg.LineageSampleN = 64
	}
	res := &ObsResult{Experiment: "obs", Repeats: cfg.Repeats, SampleN: cfg.LineageSampleN}
	for _, d := range obsDeployments(cfg.Seed) {
		dr := ObsDeploymentResult{Name: d.name}
		dep, err := d.build()
		if err != nil {
			return nil, err
		}
		dr.Receptors = len(dep.Receptors)

		minWall := func(mode string) (time.Duration, ObsModeResult, error) {
			best := time.Duration(0)
			var cell ObsModeResult
			for r := 0; r < cfg.Repeats; r++ {
				wall, epochs, in, traces, err := obsRun(d, mode, cfg)
				if err != nil {
					return 0, cell, fmt.Errorf("exp: obs %s/%s: %w", d.name, mode, err)
				}
				if best == 0 || wall < best {
					best = wall
					cell = ObsModeResult{Mode: mode, WallNs: wall.Nanoseconds(), TuplesIn: in, LineageTraces: traces}
					dr.Epochs = epochs
				}
			}
			return best, cell, nil
		}

		// Two independent off measurement sets: the first is the
		// baseline, the second quantifies the disabled-gate cost (one
		// atomic load per epoch) against run-to-run noise.
		offWall, offCell, err := minWall("off")
		if err != nil {
			return nil, err
		}
		off2Wall, _, err := minWall("off")
		if err != nil {
			return nil, err
		}
		dr.DisabledOverhead = float64(off2Wall-offWall) / float64(offWall)

		cells := []ObsModeResult{offCell}
		for _, mode := range []string{"counters", "lineage"} {
			wall, cell, err := minWall(mode)
			if err != nil {
				return nil, err
			}
			cell.Overhead = float64(wall-offWall) / float64(offWall)
			cells = append(cells, cell)
		}
		for i := range cells {
			if dr.Epochs > 0 {
				cells[i].NsPerEpoch = cells[i].WallNs / int64(dr.Epochs)
			}
		}
		dr.Modes = cells
		res.Deployments = append(res.Deployments, dr)
	}
	return res, nil
}
