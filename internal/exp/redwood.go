package exp

import (
	"fmt"
	"time"

	"esp/internal/core"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// RedwoodConfig parameterises the §5.2 epoch-yield experiment.
type RedwoodConfig struct {
	Sim sim.RedwoodConfig
	// Duration is the trace length (3.5 days in the paper).
	Duration time.Duration
	// SmoothWindow is the Smooth stage's expanded aggregation window
	// (30 minutes in the paper — §5.2.1's window expansion, because the
	// collection interval equals the 5-minute temporal granule).
	SmoothWindow time.Duration
	// Tolerance is the accuracy bound (1 °C for trend analysis).
	Tolerance float64
}

// DefaultRedwoodConfig matches the paper.
func DefaultRedwoodConfig() RedwoodConfig {
	return RedwoodConfig{
		Sim:          sim.DefaultRedwoodConfig(),
		Duration:     84 * time.Hour, // 3.5 days
		SmoothWindow: 30 * time.Minute,
		Tolerance:    1.0,
	}
}

// RedwoodResult is the §5.2 table-in-text: epoch yield and accuracy at
// each pipeline depth.
type RedwoodResult struct {
	// RawYield is the delivered fraction of requested readings (~40 %).
	RawYield float64
	// SmoothYield / SmoothWithinTol are after temporal aggregation
	// (paper: 77 % yield, 99 % within 1 °C).
	SmoothYield, SmoothWithinTol float64
	// MergeYield / MergeWithinTol are after spatial aggregation
	// (paper: 92 % yield, 94 % within 1 °C).
	MergeYield, MergeWithinTol float64
	// Motes and Epochs record the workload size.
	Motes, Epochs int
}

// RunRedwoodYield reproduces the §5.2 numbers. One processor run
// computes both levels: the Smooth tap observes per-mote temporal
// aggregation and the type output observes the per-group Merge.
func RunRedwoodYield(cfg RedwoodConfig) (*RedwoodResult, error) {
	sc, err := sim.NewRedwoodScenario(cfg.Sim)
	if err != nil {
		return nil, err
	}
	start := time.Unix(0, 0).UTC()
	epochs := int(cfg.Duration / cfg.Sim.Epoch)

	// Pre-generate each mote's logged trace (the accuracy ground truth —
	// the real deployment's local flash log) and its delivered subset.
	logged := make(map[string][]float64, len(sc.Motes))
	var replays []receptor.Receptor
	rawDelivered := 0
	for _, m := range sc.Motes {
		lg := make([]float64, epochs)
		var tuples []stream.Tuple
		for e := 0; e < epochs; e++ {
			now := start.Add(time.Duration(e+1) * cfg.Sim.Epoch)
			t, ok := m.PollLogged(now)
			lg[e] = t.Values[1].AsFloat()
			if ok {
				rawDelivered++
				tuples = append(tuples, t)
			}
		}
		logged[m.ID()] = lg
		replays = append(replays, receptor.NewReplay(m.ID(), receptor.TypeMote, m.Schema(), tuples))
	}

	dep := &core.Deployment{
		Epoch:     cfg.Sim.Epoch,
		Receptors: replays,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: core.SmoothAvg("temp", cfg.SmoothWindow),
				Merge:  core.MergeAvg("temp", cfg.Sim.Epoch),
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}

	// Group membership for attributing Merge output to member motes.
	members := make(map[string][]string)
	for _, g := range sc.Groups.Names() {
		gr, _ := sc.Groups.Group(g)
		members[g] = gr.Members
	}

	type obs struct {
		mote string
		val  float64
	}
	curEpoch := 0
	smoothObs := make([][]obs, epochs)
	mergeObs := make([][]obs, epochs)

	p.Tap(receptor.TypeMote, core.StageSmooth, func(tu stream.Tuple) {
		// Smooth-tap schema: (receptor_id, spatial_granule, temp).
		smoothObs[curEpoch] = append(smoothObs[curEpoch], obs{
			mote: tu.Values[0].AsString(),
			val:  tu.Values[2].AsFloat(),
		})
	})
	mergeSchema, _ := p.TypeSchema(receptor.TypeMote)
	granIx := mergeSchema.MustIndex(core.ColGranule)
	tempIx := mergeSchema.MustIndex("temp")
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		g := tu.Values[granIx].AsString()
		v := tu.Values[tempIx].AsFloat()
		for _, m := range members[g] {
			mergeObs[curEpoch] = append(mergeObs[curEpoch], obs{mote: m, val: v})
		}
	})

	for e := 0; e < epochs; e++ {
		curEpoch = e
		if err := p.Step(start.Add(time.Duration(e+1) * cfg.Sim.Epoch)); err != nil {
			return nil, err
		}
	}

	// Score both levels against the logs, skipping the Smooth warmup.
	warmupEpochs := int(cfg.SmoothWindow / cfg.Sim.Epoch)
	score := func(rows [][]obs) (yield, within float64, err error) {
		var rep, tru []float64
		covered := 0
		total := 0
		for e := warmupEpochs; e < epochs; e++ {
			total += len(sc.Motes)
			seen := make(map[string]bool, len(rows[e]))
			for _, o := range rows[e] {
				if seen[o.mote] {
					continue
				}
				seen[o.mote] = true
				covered++
				rep = append(rep, o.val)
				tru = append(tru, logged[o.mote][e])
			}
		}
		if yield, err = metrics.EpochYield(covered, total); err != nil {
			return 0, 0, err
		}
		if within, err = metrics.WithinTolerance(rep, tru, cfg.Tolerance); err != nil {
			return 0, 0, err
		}
		return yield, within, nil
	}

	res := &RedwoodResult{Motes: len(sc.Motes), Epochs: epochs - warmupEpochs}
	if res.RawYield, err = metrics.EpochYield(rawDelivered, len(sc.Motes)*epochs); err != nil {
		return nil, err
	}
	if res.SmoothYield, res.SmoothWithinTol, err = score(smoothObs); err != nil {
		return nil, err
	}
	if res.MergeYield, res.MergeWithinTol, err = score(mergeObs); err != nil {
		return nil, err
	}
	return res, nil
}

// SpatialPoint is one point of the §5.3.2 spatial-granule sweep.
type SpatialPoint struct {
	GroupSize  int
	MergeYield float64
	WithinTol  float64
}

// RunSpatialSweep reifies the §5.3.2 discussion: growing the spatial
// granule (proximity-group size) raises the epoch yield but admits
// readings from increasingly different micro-climates, reducing accuracy.
func RunSpatialSweep(base RedwoodConfig, sizes []int) ([]SpatialPoint, error) {
	if len(sizes) == 0 {
		sizes = []int{1, 2, 4, 8}
	}
	var out []SpatialPoint
	for _, k := range sizes {
		cfg := base
		cfg.Sim.GroupSize = k
		r, err := RunRedwoodYield(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: group size %d: %w", k, err)
		}
		out = append(out, SpatialPoint{GroupSize: k, MergeYield: r.MergeYield, WithinTol: r.MergeWithinTol})
	}
	return out, nil
}
