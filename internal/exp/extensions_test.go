package exp

import (
	"testing"
	"time"
)

func TestActuationComparison(t *testing.T) {
	cfg := DefaultActuationConfig()
	cfg.Duration = 12 * time.Hour
	cfg.Sim.Motes = 8
	vs, err := RunActuation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 {
		t.Fatalf("variants = %v", vs)
	}
	static, expanded, actuated := vs[0], vs[1], vs[2]
	if actuated.SmoothYield <= static.SmoothYield {
		t.Errorf("actuation (%v) must beat the static granule window (%v)",
			actuated.SmoothYield, static.SmoothYield)
	}
	if expanded.SmoothYield <= static.SmoothYield {
		t.Errorf("window expansion (%v) must beat the static granule window (%v)",
			expanded.SmoothYield, static.SmoothYield)
	}
	// Actuation's cost is energy, not staleness: more samples per hour.
	if actuated.SamplesPerMoteHour <= static.SamplesPerMoteHour {
		t.Errorf("actuation should cost samples: %v vs %v",
			actuated.SamplesPerMoteHour, static.SamplesPerMoteHour)
	}
	if static.Transitions != 0 || expanded.Transitions != 0 {
		t.Errorf("static variants actuated: %d, %d", static.Transitions, expanded.Transitions)
	}
	if actuated.Transitions == 0 {
		t.Error("actuated variant never issued a command")
	}
}

func TestRobustMergeAblation(t *testing.T) {
	cfg := DefaultOutlierConfig()
	cfg.Duration = 30 * time.Hour
	rs, err := RunRobustMerge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("results = %v", rs)
	}
	sigma, median, plain := rs[0], rs[1], rs[2]
	if median.Within1C < sigma.Within1C {
		t.Errorf("median (%v) should be at least as accurate as avg±σ (%v)",
			median.Within1C, sigma.Within1C)
	}
	if median.MaxErr > 2 {
		t.Errorf("median max err = %v, want outlier-immune (<2C)", median.MaxErr)
	}
	if plain.Within1C >= sigma.Within1C {
		t.Errorf("plain average (%v) should be worst, avg±σ at %v",
			plain.Within1C, sigma.Within1C)
	}
	for _, r := range rs {
		if r.Coverage < 0.9 {
			t.Errorf("%s coverage = %v", r.Name, r.Coverage)
		}
	}
}

func TestModelOutlierDetectsEarly(t *testing.T) {
	cfg := DefaultModelOutlierConfig()
	res, err := RunModelOutlier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelFirstDrop < 0 {
		t.Fatal("model never rejected the failing sensor")
	}
	if res.ModelFirstDrop < cfg.FailStart {
		t.Errorf("model rejected at %v, before failure at %v (false positive)",
			res.ModelFirstDrop, cfg.FailStart)
	}
	// The whole point: hours before the absolute threshold fires.
	if res.ThresholdFirstDrop-res.ModelFirstDrop < 4*time.Hour {
		t.Errorf("model at %v vs threshold at %v: want several hours earlier",
			res.ModelFirstDrop, res.ThresholdFirstDrop)
	}
	if res.PostFailureRejected < 0.8 {
		t.Errorf("post-failure rejection = %v, want most readings dropped", res.PostFailureRejected)
	}
	if res.PreFailureRejected > 0.01 {
		t.Errorf("pre-failure false positives = %v, want ~0", res.PreFailureRejected)
	}
}
