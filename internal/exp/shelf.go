// Package exp contains one self-contained runner per experiment in the
// paper's evaluation: every figure and in-text number has a function here
// that regenerates it (see DESIGN.md's experiment index). The runners are
// shared by cmd/espbench, bench_test.go, and EXPERIMENTS.md.
package exp

import (
	"fmt"
	"time"

	"esp/internal/core"
	"esp/internal/cql"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// PipelineMode selects a Figure 5 ablation configuration.
type PipelineMode int

// The five configurations of Figure 5.
const (
	ModeRaw PipelineMode = iota
	ModeSmoothOnly
	ModeArbitrateOnly
	ModeArbitrateSmooth
	ModeSmoothArbitrate
)

// String names the mode as in Figure 5's x-axis.
func (m PipelineMode) String() string {
	switch m {
	case ModeRaw:
		return "Raw"
	case ModeSmoothOnly:
		return "Smooth Only"
	case ModeArbitrateOnly:
		return "Arbitrate Only"
	case ModeArbitrateSmooth:
		return "Arbitrate+Smooth"
	case ModeSmoothArbitrate:
		return "Smooth+Arbitrate"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// AllModes lists the Figure 5 configurations in presentation order.
var AllModes = []PipelineMode{ModeRaw, ModeSmoothOnly, ModeArbitrateOnly, ModeArbitrateSmooth, ModeSmoothArbitrate}

// ShelfConfig parameterises the §4 RFID shelf experiment.
type ShelfConfig struct {
	Sim sim.ShelfConfig
	// Duration is the experiment length (700 s in the paper).
	Duration time.Duration
	// Granule is the temporal granule (5 s in the paper; swept by Fig 6).
	Granule time.Duration
	// Mode is the pipeline configuration.
	Mode PipelineMode
	// RestockThreshold triggers an alert when a shelf count drops below
	// it (5 in the paper).
	RestockThreshold int
	// KeepTrace retains the per-epoch count series (Figure 3 traces).
	KeepTrace bool
}

// DefaultShelfConfig is the paper's setup: 700 s, 5 s granule, full
// Smooth+Arbitrate pipeline.
func DefaultShelfConfig() ShelfConfig {
	return ShelfConfig{
		Sim:              sim.DefaultShelfConfig(),
		Duration:         700 * time.Second,
		Granule:          5 * time.Second,
		Mode:             ModeSmoothArbitrate,
		RestockThreshold: 5,
	}
}

// ShelfEpoch is one evaluation step of the shelf experiment.
type ShelfEpoch struct {
	T        time.Duration // offset from start
	Reported []int         // per shelf
	Truth    []int         // per shelf
}

// ShelfResult is the outcome of one shelf run.
type ShelfResult struct {
	Mode PipelineMode
	// AvgRelErr is the paper's Equation 1 over all (epoch, shelf) steps.
	AvgRelErr float64
	// AlertRate is restock alerts per second (count < threshold).
	AlertRate float64
	// Epochs counts evaluation steps per shelf.
	Epochs int
	Trace  []ShelfEpoch
}

// shelfPipeline builds the stage configuration for a mode.
func shelfPipeline(mode PipelineMode, granule time.Duration) *core.Pipeline {
	pl := &core.Pipeline{
		Type: receptor.TypeRFID,
		// The reader's built-in checksum filter: Point "out of the box".
		Point: core.PointChecksum("checksum_ok"),
	}
	switch mode {
	case ModeRaw:
		// Point only.
	case ModeSmoothOnly:
		pl.Smooth = core.SmoothTagCount(granule)
	case ModeArbitrateOnly:
		// The literal Query 3 on raw readings: row counts per epoch.
		pl.Arbitrate = core.ArbitrateMaxSum("tag_id", "")
	case ModeArbitrateSmooth:
		// The reversed ordering of Figure 5, packed into the type-level
		// stage slot: per-epoch arbitration of raw readings, then
		// temporal smoothing of the attributed stream.
		pl.Arbitrate = core.Compose(
			core.ArbitrateMaxSum("tag_id", ""),
			core.CQLStage{Query: fmt.Sprintf(
				`SELECT spatial_granule, tag_id, count(*) AS n
				 FROM arb_out [Range By '%d ms'] GROUP BY spatial_granule, tag_id`,
				granule.Milliseconds())},
		)
	case ModeSmoothArbitrate:
		pl.Smooth = core.SmoothTagCount(granule)
		pl.Arbitrate = core.ArbitrateMaxSum("tag_id", "n")
	}
	return pl
}

// countQuery is the application's Query 1, applied per epoch to the
// cleaned stream (the temporal granule already lives in the Smooth
// stage, so the application counts the current epoch's tags).
const countQuery = `SELECT spatial_granule, count(distinct tag_id) AS cnt
	FROM clean [Range By 'NOW'] GROUP BY spatial_granule`

// RunShelf executes the shelf experiment in one configuration.
func RunShelf(cfg ShelfConfig) (*ShelfResult, error) {
	sc, err := sim.NewShelfScenario(cfg.Sim)
	if err != nil {
		return nil, err
	}
	recs := sc.Receptors()
	dep := &core.Deployment{
		Epoch:     cfg.Sim.PollPeriod,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: shelfPipeline(cfg.Mode, cfg.Granule),
		},
		// §4.3.1 crude calibration: ties go to the weaker antenna
		// (shelf 1, read by the weaker port).
		TieBreak: func(a, b stream.Tuple) bool {
			return a.Values[0] == stream.String("shelf1")
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}
	cleanSchema, _ := p.TypeSchema(receptor.TypeRFID)
	counter, err := cql.PlanString(countQuery, cql.Catalog{"clean": cleanSchema},
		cql.PlanConfig{Slide: cfg.Sim.PollPeriod})
	if err != nil {
		return nil, err
	}

	var pending []stream.Tuple
	p.OnType(receptor.TypeRFID, func(tu stream.Tuple) { pending = append(pending, tu) })

	start := time.Unix(0, 0).UTC()
	warmup := start.Add(cfg.Granule)
	res := &ShelfResult{Mode: cfg.Mode}
	var reported, truth []float64
	var counts []float64

	for now := start.Add(cfg.Sim.PollPeriod); !now.After(start.Add(cfg.Duration)); now = now.Add(cfg.Sim.PollPeriod) {
		if err := p.Step(now); err != nil {
			return nil, err
		}
		for _, tu := range pending {
			if _, err := counter.Push("clean", tu); err != nil {
				return nil, err
			}
		}
		pending = pending[:0]
		rows, err := counter.Advance(now)
		if err != nil {
			return nil, err
		}
		if now.Before(warmup) {
			continue
		}
		byShelf := make(map[string]int, len(rows))
		for _, r := range rows {
			byShelf[r.Values[0].AsString()] = int(r.Values[1].AsInt())
		}
		epoch := ShelfEpoch{T: now.Sub(start)}
		for shelf := 0; shelf < cfg.Sim.Shelves; shelf++ {
			rep := byShelf[fmt.Sprintf("shelf%d", shelf)]
			tru := sc.TrueCount(shelf, now)
			reported = append(reported, float64(rep))
			truth = append(truth, float64(tru))
			counts = append(counts, float64(rep))
			epoch.Reported = append(epoch.Reported, rep)
			epoch.Truth = append(epoch.Truth, tru)
		}
		res.Epochs++
		if cfg.KeepTrace {
			res.Trace = append(res.Trace, epoch)
		}
	}
	if res.AvgRelErr, err = metrics.AvgRelativeError(reported, truth); err != nil {
		return nil, err
	}
	evalSeconds := (time.Duration(res.Epochs) * cfg.Sim.PollPeriod).Seconds()
	if res.AlertRate, err = metrics.AlertRate(counts, float64(cfg.RestockThreshold), evalSeconds); err != nil {
		return nil, err
	}
	return res, nil
}

// RunShelfAblation reproduces Figure 5: the average relative error of
// Query 1 under each pipeline configuration.
func RunShelfAblation(base ShelfConfig) ([]ShelfResult, error) {
	var out []ShelfResult
	for _, mode := range AllModes {
		cfg := base
		cfg.Mode = mode
		cfg.KeepTrace = false
		r, err := RunShelf(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: mode %s: %w", mode, err)
		}
		out = append(out, *r)
	}
	return out, nil
}

// GranulePoint is one point of the Figure 6 sweep.
type GranulePoint struct {
	Granule   time.Duration
	AvgRelErr float64
}

// RunGranuleSweep reproduces Figure 6: average relative error of the full
// pipeline as the temporal granule grows. Error is high for tiny granules
// (no readings to interpolate from), minimal near 5 s, and rises again as
// the window outlives tag relocations.
func RunGranuleSweep(base ShelfConfig, granules []time.Duration) ([]GranulePoint, error) {
	if len(granules) == 0 {
		granules = []time.Duration{
			200 * time.Millisecond, 600 * time.Millisecond, time.Second,
			2 * time.Second, 5 * time.Second, 10 * time.Second,
			15 * time.Second, 20 * time.Second, 30 * time.Second,
		}
	}
	var out []GranulePoint
	for _, g := range granules {
		cfg := base
		cfg.Mode = ModeSmoothArbitrate
		cfg.Granule = g
		cfg.KeepTrace = false
		r, err := RunShelf(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp: granule %v: %w", g, err)
		}
		out = append(out, GranulePoint{Granule: g, AvgRelErr: r.AvgRelErr})
	}
	return out, nil
}
