package exp

import (
	"fmt"
	"math"
	"time"

	"esp/internal/core"
	"esp/internal/sim"
)

// ModelOutlierConfig parameterises the §6.3.1 model-based cleaning
// extension: detect a fail-dirty temperature sensor from the *same
// device's* battery voltage, with no neighbouring motes at all.
type ModelOutlierConfig struct {
	Seed     int64
	Epoch    time.Duration
	Duration time.Duration
	// Room temperature model (as in the §5.1 outlier experiment).
	RoomTemp, DiurnalAmp, NoiseStd float64
	// Voltage correlation: volts = VoltBase + VoltPerDeg·(temp-RoomTemp).
	VoltBase, VoltPerDeg, VoltNoiseStd float64
	// Fail-dirty parameters for the temperature channel.
	FailStart       time.Duration
	FailRampPerHour float64
	// Sigma is the model stage's rejection threshold; PointLimit the
	// naive range filter it is compared against.
	Sigma      float64
	PointLimit float64
}

// DefaultModelOutlierConfig mirrors the Figure 7 setup with a voltage
// channel added.
func DefaultModelOutlierConfig() ModelOutlierConfig {
	return ModelOutlierConfig{
		Seed:            31,
		Epoch:           5 * time.Minute,
		Duration:        30 * time.Hour,
		RoomTemp:        22,
		DiurnalAmp:      2.5,
		NoiseStd:        0.2,
		VoltBase:        2.9,
		VoltPerDeg:      -0.01,
		VoltNoiseStd:    0.004,
		FailStart:       10 * time.Hour,
		FailRampPerHour: 3.0,
		Sigma:           5,
		PointLimit:      50,
	}
}

// ModelOutlierResult compares detection latencies.
type ModelOutlierResult struct {
	// ModelFirstDrop is when the model stage first rejected a reading of
	// the failing sensor (-1 if never).
	ModelFirstDrop time.Duration
	// ThresholdFirstDrop is when a naive `temp < PointLimit` Point filter
	// would first have fired.
	ThresholdFirstDrop time.Duration
	// PostFailureRejected is the fraction of post-failure readings the
	// model stage rejected.
	PostFailureRejected float64
	// PreFailureRejected is the false-positive fraction before failure.
	PreFailureRejected float64
}

// RunModelOutlier drives one fail-dirty mote's (temp, voltage) stream
// through a PointModelOutlier stage. The temperature channel decouples at
// FailStart while voltage keeps tracking the true room temperature, so
// the learned temp~voltage correlation breaks long before the reading
// looks absolutely implausible.
func RunModelOutlier(cfg ModelOutlierConfig) (*ModelOutlierResult, error) {
	day := float64(24 * time.Hour)
	trueTemp := func(now time.Time) float64 {
		t := float64(now.UnixNano())
		return cfg.RoomTemp + cfg.DiurnalAmp*math.Sin(2*math.Pi*t/day)
	}
	mote := sim.NewMote(cfg.Seed, "mote1", 1.0,
		sim.SensorModel{Name: "temp", Truth: trueTemp, NoiseStd: cfg.NoiseStd},
		sim.SensorModel{
			Name: "voltage",
			Truth: func(now time.Time) float64 {
				return cfg.VoltBase + cfg.VoltPerDeg*(trueTemp(now)-cfg.RoomTemp)
			},
			NoiseStd: cfg.VoltNoiseStd,
		},
	)
	mote.Fail = &sim.FailDirty{
		Sensor:      "temp",
		Start:       time.Unix(0, 0).Add(cfg.FailStart),
		RampPerHour: cfg.FailRampPerHour,
	}

	stage := core.PointModelOutlier("voltage", "temp", cfg.Sigma, 3*cfg.NoiseStd, 20, 1)
	op, err := stage.Build(mote.Schema(), core.BuildEnv{Epoch: cfg.Epoch})
	if err != nil {
		return nil, err
	}
	if err := op.Open(mote.Schema()); err != nil {
		return nil, err
	}

	res := &ModelOutlierResult{ModelFirstDrop: -1, ThresholdFirstDrop: -1}
	tempIx := mote.Schema().MustIndex("temp")
	start := time.Unix(0, 0).UTC()
	var postTotal, postDropped, preTotal, preDropped int
	for now := start.Add(cfg.Epoch); !now.After(start.Add(cfg.Duration)); now = now.Add(cfg.Epoch) {
		for _, tu := range mote.Poll(now) {
			temp := tu.Values[tempIx].AsFloat()
			out, err := op.Process(tu)
			if err != nil {
				return nil, err
			}
			dropped := len(out) == 0
			t := now.Sub(start)
			if dropped && res.ModelFirstDrop < 0 {
				res.ModelFirstDrop = t
			}
			if temp >= cfg.PointLimit && res.ThresholdFirstDrop < 0 {
				res.ThresholdFirstDrop = t
			}
			if t > cfg.FailStart {
				postTotal++
				if dropped {
					postDropped++
				}
			} else {
				preTotal++
				if dropped {
					preDropped++
				}
			}
		}
	}
	if postTotal == 0 || preTotal == 0 {
		return nil, fmt.Errorf("exp: model outlier run produced no readings")
	}
	res.PostFailureRejected = float64(postDropped) / float64(postTotal)
	res.PreFailureRejected = float64(preDropped) / float64(preTotal)
	return res, nil
}
