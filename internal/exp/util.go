package exp

import "math"

func nan() float64         { return math.NaN() }
func isNaN(v float64) bool { return math.IsNaN(v) }
func abs(v float64) float64 {
	return math.Abs(v)
}
