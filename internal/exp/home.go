package exp

import (
	"time"

	"esp/internal/core"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// HomeConfig parameterises the §6 digital-home person detector (Fig. 9).
type HomeConfig struct {
	Sim sim.HomeConfig
	// Duration is the experiment length (600 s in the paper).
	Duration time.Duration
	// Granule is the low-level temporal granule used by the per-type
	// Smooth stages.
	Granule time.Duration
	// NoiseThreshold and Votes configure the Virtualize query (525 and
	// 2-of-3 in the paper).
	NoiseThreshold float64
	Votes          int
	// KeepTrace retains per-epoch detection/truth for Figure 9(e).
	KeepTrace bool
}

// DefaultHomeConfig matches the paper.
func DefaultHomeConfig() HomeConfig {
	return HomeConfig{
		Sim:            sim.DefaultHomeConfig(),
		Duration:       600 * time.Second,
		Granule:        10 * time.Second,
		NoiseThreshold: 525,
		Votes:          2,
	}
}

// HomeEpoch is one evaluation step of the person detector.
type HomeEpoch struct {
	T        time.Duration
	Detected bool
	Truth    bool
}

// HomeResult summarises the digital-home experiment.
type HomeResult struct {
	// Accuracy is the fraction of epochs where the detector matched
	// reality (the paper reports 92 %).
	Accuracy float64
	// FalsePositives / FalseNegatives count the disagreement epochs.
	FalsePositives, FalseNegatives int
	Epochs                         int
	Trace                          []HomeEpoch
}

// RunDigitalHome reproduces Figure 9: per-type pipelines clean the RFID,
// sound-mote, and X10 streams, and a Virtualize voting query (Query 6)
// fuses them into a virtual person detector.
func RunDigitalHome(cfg HomeConfig) (*HomeResult, error) {
	sc, err := sim.NewHomeScenario(cfg.Sim)
	if err != nil {
		return nil, err
	}
	recs := sc.Receptors()

	expectedTags := stream.MustTable(
		stream.MustSchema(stream.Field{Name: "expected_tag", Kind: stream.KindString}),
		[]stream.Tuple{stream.NewTuple(time.Time{}, stream.String(sim.BadgeTagID))},
	)

	dep := &core.Deployment{
		Epoch:     cfg.Sim.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Tables:    map[string]*stream.Table{"expected_tags": expectedTags},
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeRFID: {
				Type: receptor.TypeRFID,
				// Checksum filter plus the §6.1 static-relation join that
				// removes antenna 1's errant tag.
				Point:  core.Compose(core.PointChecksum("checksum_ok"), core.PointExpectedTags("tag_id", "expected_tags", "expected_tag")),
				Smooth: core.SmoothTagCount(cfg.Granule),
				// Both readers watch the same granule: Merge just unions.
				Merge: core.MergeUnion(),
			},
			receptor.TypeMote: {
				Type:   receptor.TypeMote,
				Smooth: core.SmoothAvg("noise", cfg.Granule),
				Merge:  core.MergeAvg("noise", cfg.Sim.Epoch),
			},
			receptor.TypeMotion: {
				Type:   receptor.TypeMotion,
				Smooth: core.SmoothEvents(cfg.Granule, 1),
				Merge:  core.MergeVote(cfg.Sim.Epoch, 2),
			},
		},
		Virtualize: &core.VirtualizeSpec{
			Query: core.PersonDetectorQuery(cfg.NoiseThreshold, cfg.Votes),
			Bind: map[string]receptor.Type{
				"sensors_input": receptor.TypeMote,
				"rfid_input":    receptor.TypeRFID,
				"motion_input":  receptor.TypeMotion,
			},
		},
	}
	p, err := core.NewProcessor(dep)
	if err != nil {
		return nil, err
	}

	detected := false
	p.OnVirtualize(func(stream.Tuple) { detected = true })

	start := time.Unix(0, 0).UTC()
	res := &HomeResult{}
	var preds, truths []bool
	for now := start.Add(cfg.Sim.Epoch); !now.After(start.Add(cfg.Duration)); now = now.Add(cfg.Sim.Epoch) {
		detected = false
		if err := p.Step(now); err != nil {
			return nil, err
		}
		truth := sc.Present(now)
		preds = append(preds, detected)
		truths = append(truths, truth)
		if detected && !truth {
			res.FalsePositives++
		}
		if !detected && truth {
			res.FalseNegatives++
		}
		res.Epochs++
		if cfg.KeepTrace {
			res.Trace = append(res.Trace, HomeEpoch{T: now.Sub(start), Detected: detected, Truth: truth})
		}
	}
	if res.Accuracy, err = metrics.BinaryAccuracy(preds, truths); err != nil {
		return nil, err
	}
	return res, nil
}
