package exp

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"esp/internal/netchaos"
	"esp/internal/server"
	"esp/internal/telemetry"
	"esp/internal/wire"
)

// NetChaosConfig parameterises the network-chaos experiment: the
// loadgen workload driven through a fault-injecting TCP proxy by
// resilient session clients, with a link fault at every epoch
// boundary, plus a fault-free leg pair measuring the connection
// deadlines' overhead.
type NetChaosConfig struct {
	// Load shapes the workload (DefaultLoadgenOptions = 1000 motes).
	Load LoadgenOptions
	// Publishers is the resilient publisher connection count.
	Publishers int
	// Seed drives the fault schedule and the clients' backoff jitter.
	Seed int64
	// CallTimeout / ReadTimeout are the clients' per-call and
	// subscriber-wait bounds; short values make stalled links fail fast.
	CallTimeout time.Duration
	ReadTimeout time.Duration
	// IdleTimeout / WriteTimeout configure the chaos-leg server's
	// connection deadlines.
	IdleTimeout  time.Duration
	WriteTimeout time.Duration
	// StallFor / PartitionFor is how long stall and partition faults
	// last before the harness lifts them.
	StallFor     time.Duration
	PartitionFor time.Duration
}

// DefaultNetChaosConfig sizes the experiment for `espbench -exp
// netchaos`: the canonical 1000-mote workload with a fault at every
// one of its 30 epoch boundaries.
func DefaultNetChaosConfig() NetChaosConfig {
	return NetChaosConfig{
		Load:         DefaultLoadgenOptions(),
		Publishers:   8,
		Seed:         7,
		CallTimeout:  500 * time.Millisecond,
		ReadTimeout:  2 * time.Second,
		IdleTimeout:  30 * time.Second,
		WriteTimeout: 5 * time.Second,
		StallFor:     250 * time.Millisecond,
		PartitionFor: 150 * time.Millisecond,
	}
}

// NetChaosResult is the BENCH_netchaos.json document. The acceptance
// gates: FingerprintMatch (the chaos run's output is byte-identical to
// the fault-free run's — no committed epoch lost, nothing delivered
// twice), ExactlyOnce (applied tuple count equals published tuple
// count — no publish double-applied despite replays), and the fault
// counters proving the faults actually happened.
type NetChaosResult struct {
	Experiment string `json:"experiment"`
	Motes      int    `json:"motes"`
	Epochs     int    `json:"epochs"`
	Publishers int    `json:"publishers"`
	Seed       int64  `json:"seed"`

	// Fault injection accounting.
	Faults       map[string]int `json:"faults"`
	LinksOpened  int64          `json:"links_opened"`
	LinksKilled  int64          `json:"links_killed"`
	Reconnects   int64          `json:"client_reconnects"`
	ServerReconn int64          `json:"serve_reconnects"`
	Resumes      int64          `json:"serve_resumes"`
	DedupDrops   int64          `json:"serve_dedup_drops"`
	IdleKills    int64          `json:"conn_idle_kills"`

	// Exactly-once verdicts.
	TuplesPublished  int    `json:"tuples_published"`
	TuplesApplied    int64  `json:"tuples_applied"`
	ExactlyOnce      bool   `json:"exactly_once"`
	EpochsCommitted  int64  `json:"epochs_committed"`
	FingerprintClean string `json:"fingerprint_clean"`
	FingerprintChaos string `json:"fingerprint_chaos"`
	FingerprintMatch bool   `json:"fingerprint_match"`

	// Recovery latency: the duration of the first publish call to ack
	// through each injected fault — reconnect, backoff, session resume,
	// and replay included.
	ResumeLatency telemetry.HistogramSnapshot `json:"resume_latency"`

	// Deadline overhead: the fault-free workload with deadlines off vs
	// on (direct TCP, no proxy). Comparable to BENCH_serve.json.
	WallNsNoDeadlines   int64   `json:"wall_ns_no_deadlines"`
	WallNsDeadlines     int64   `json:"wall_ns_deadlines"`
	DeadlineOverheadPct float64 `json:"deadline_overhead_pct"`
	WallNsChaos         int64   `json:"wall_ns_chaos"`
}

// RunNetChaos runs the three legs — fault-free without deadlines,
// fault-free with deadlines (also the reference fingerprint), and the
// chaos leg through the proxy — plus the deterministic dedup and
// idle-kill probes. It fails hard on any acceptance-gate violation, so
// `espbench -exp netchaos` doubles as a resilience test.
func RunNetChaos(cfg NetChaosConfig) (*NetChaosResult, error) {
	spec := LoadgenSpec(cfg.Load)
	steps, published := LoadgenWorkload(cfg.Load)

	wallOff, fpOff, err := runDirectLeg(cfg, spec, steps, false)
	if err != nil {
		return nil, fmt.Errorf("netchaos: no-deadline leg: %w", err)
	}
	wallOn, fpOn, err := runDirectLeg(cfg, spec, steps, true)
	if err != nil {
		return nil, fmt.Errorf("netchaos: deadline leg: %w", err)
	}
	if fpOn.Sum() != fpOff.Sum() {
		return nil, fmt.Errorf("netchaos: deadline leg output %016x diverged from no-deadline leg %016x",
			fpOn.Sum(), fpOff.Sum())
	}

	res, err := runChaosLeg(cfg, spec, steps, published)
	if err != nil {
		return res, err
	}

	idleKills, err := probeIdleKill()
	if err != nil {
		return res, err
	}
	res.IdleKills += idleKills

	res.Experiment = "netchaos"
	res.Motes = cfg.Load.Motes
	res.Epochs = cfg.Load.Epochs
	res.Publishers = cfg.Publishers
	res.Seed = cfg.Seed
	res.WallNsNoDeadlines = wallOff
	res.WallNsDeadlines = wallOn
	res.DeadlineOverheadPct = 100 * (float64(wallOn)/float64(wallOff) - 1)
	res.FingerprintClean = fmt.Sprintf("%016x", fpOn.Sum())
	res.FingerprintMatch = res.FingerprintChaos == res.FingerprintClean
	if !res.FingerprintMatch {
		return res, fmt.Errorf("netchaos: chaos output %s diverged from fault-free %s",
			res.FingerprintChaos, res.FingerprintClean)
	}
	return res, nil
}

// runDirectLeg drives the workload straight at a server (no proxy, no
// faults) with plain clients, timing the run.
func runDirectLeg(cfg NetChaosConfig, spec []byte, steps []Step, deadlines bool) (wallNs int64, fp *server.Fingerprint, err error) {
	scfg := server.Config{Addr: "127.0.0.1:0"}
	if deadlines {
		scfg.IdleTimeout = cfg.IdleTimeout
		scfg.WriteTimeout = cfg.WriteTimeout
	}
	s, err := server.Listen(scfg)
	if err != nil {
		return 0, nil, err
	}
	go s.Serve() //nolint:errcheck
	defer shutdown(s)

	ctl, err := server.Dial(s.Addr())
	if err != nil {
		return 0, nil, err
	}
	defer ctl.Close()
	if err := ctl.Create("netchaos", spec); err != nil {
		return 0, nil, err
	}
	subc, err := server.Dial(s.Addr())
	if err != nil {
		return 0, nil, err
	}
	defer subc.Close()
	if err := subc.Subscribe("netchaos", "mote"); err != nil {
		return 0, nil, err
	}
	fp = server.NewFingerprint()
	subErr := collect(fp, steps, func() (wire.Data, bool, error) {
		d, _, done, err := subc.Next()
		return d, done, err
	})

	pubs := make([]*server.Client, cfg.Publishers)
	for i := range pubs {
		c, err := server.Dial(s.Addr())
		if err != nil {
			return 0, nil, err
		}
		defer c.Close()
		if err := c.Hello("netchaos", "pub"); err != nil {
			return 0, nil, err
		}
		pubs[i] = c
	}

	start := time.Now()
	err = drive(steps, cfg.Publishers,
		func(now time.Time) error { return ctl.Advance(now) },
		func(w int, rec string, st Step) error {
			_, err := pubs[w].Publish(rec, st.Pubs[rec])
			return err
		}, nil)
	if err != nil {
		return 0, nil, err
	}
	wallNs = time.Since(start).Nanoseconds()
	if err := <-subErr; err != nil {
		return 0, nil, err
	}
	return wallNs, fp, nil
}

// collect consumes a subscription until the workload's final epoch is
// delivered, folding every frame into the fingerprint. next is the
// subscription's read call (the plain or the resilient client's).
func collect(fp *server.Fingerprint, steps []Step, next func() (wire.Data, bool, error)) <-chan error {
	final := steps[len(steps)-1].Now.UnixNano()
	done := make(chan error, 1)
	go func() {
		for {
			d, eos, err := next()
			if err != nil {
				done <- err
				return
			}
			if eos {
				done <- nil
				return
			}
			fp.Add(d)
			if d.Epoch >= final {
				done <- nil
				return
			}
		}
	}()
	return done
}

// drive replays the workload: each step's publishes fan out across
// `workers` publisher slots (receptor i goes to slot i mod workers — a
// stable partition, so retried runs replay identically), then the
// boundary is advanced. afterBoundary, when non-nil, runs after each
// advance (the fault-injection hook).
func drive(steps []Step, workers int, advance func(time.Time) error,
	publish func(w int, rec string, st Step) error, afterBoundary func(i int)) error {
	for si, st := range steps {
		recs := make([]string, 0, len(st.Pubs))
		for rec := range st.Pubs {
			recs = append(recs, rec)
		}
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ri, rec := range recs {
					if ri%workers != w {
						continue
					}
					if err := publish(w, rec, st); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		if err := advance(st.Now); err != nil {
			return err
		}
		if afterBoundary != nil {
			afterBoundary(si)
		}
	}
	return nil
}

// runChaosLeg drives the workload through the netchaos proxy with
// resilient clients, injecting one link fault at every epoch boundary,
// and verifies exactly-once delivery end to end.
func runChaosLeg(cfg NetChaosConfig, spec []byte, steps []Step, published int) (*NetChaosResult, error) {
	walDir, err := os.MkdirTemp("", "netchaos-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(walDir)

	s, err := server.Listen(server.Config{
		Addr:         "127.0.0.1:0",
		WALDir:       walDir,
		IdleTimeout:  cfg.IdleTimeout,
		WriteTimeout: cfg.WriteTimeout,
	})
	if err != nil {
		return nil, err
	}
	go s.Serve() //nolint:errcheck
	defer shutdown(s)

	proxy, err := netchaos.Listen(s.Addr())
	if err != nil {
		return nil, err
	}
	defer proxy.Close()

	// Create the tenant over a direct connection (control-plane setup is
	// not under test); everything after this goes through the proxy.
	ctl, err := server.Dial(s.Addr())
	if err != nil {
		return nil, err
	}
	if err := ctl.Create("netchaos", spec); err != nil {
		return nil, err
	}
	ctl.Close()

	pol := func(seed int64) server.RetryPolicy {
		return server.RetryPolicy{
			MaxAttempts: 12,
			BaseBackoff: 10 * time.Millisecond,
			MaxBackoff:  400 * time.Millisecond,
			Seed:        seed,
			CallTimeout: cfg.CallTimeout,
			ReadTimeout: cfg.ReadTimeout,
		}
	}

	// Resilient subscriber through the proxy.
	subc, err := server.DialResilient(proxy.Addr(), "netchaos", "", pol(cfg.Seed))
	if err != nil {
		return nil, err
	}
	defer subc.Close()
	if err := subc.Subscribe("mote"); err != nil {
		return nil, err
	}
	fp := server.NewFingerprint()
	subErr := collect(fp, steps, func() (wire.Data, bool, error) {
		d, _, done, err := subc.Next()
		return d, done, err
	})

	// Resilient session publishers and the control client, all proxied.
	pubs := make([]*server.ResilientClient, cfg.Publishers)
	for i := range pubs {
		c, err := server.DialResilient(proxy.Addr(), "netchaos", fmt.Sprintf("pub-%d", i), pol(cfg.Seed+int64(i)+1))
		if err != nil {
			return nil, err
		}
		defer c.Close()
		pubs[i] = c
	}
	clk, err := server.DialResilient(proxy.Addr(), "netchaos", "clock", pol(cfg.Seed+100))
	if err != nil {
		return nil, err
	}
	defer clk.Close()

	// The fault schedule: one seeded fault after every epoch boundary,
	// hitting the publishes and resumed subscription of the next epoch.
	rng := rand.New(rand.NewSource(cfg.Seed))
	kinds := []string{"kill", "truncate", "stall", "partition", "latency"}
	faults := make(map[string]int)
	resumeLat := telemetry.NewRegistry().Histogram("resume_ns")
	var faultMu sync.Mutex
	faultPending := false
	inject := func(i int) {
		kind := kinds[rng.Intn(len(kinds))]
		faults[kind]++
		faultMu.Lock()
		faultPending = true
		faultMu.Unlock()
		proxy.SetLatency(0) // a latency fault lasts until the next boundary
		switch kind {
		case "kill":
			proxy.KillAll()
		case "truncate":
			// A budget smaller than any frame: the tear surfaces as soon
			// as each link next carries traffic.
			proxy.TruncateAll(rng.Int63n(64))
		case "stall":
			proxy.Stall()
			time.AfterFunc(cfg.StallFor, proxy.Resume)
		case "partition":
			proxy.Partition()
			time.AfterFunc(cfg.PartitionFor, proxy.Heal)
		case "latency":
			// Degraded, not dead: every chunk crawls. Nothing should
			// reconnect — exactly-once must hold anyway.
			proxy.SetLatency(time.Duration(1+rng.Int63n(5)) * time.Millisecond)
		}
	}

	start := time.Now()
	err = drive(steps, cfg.Publishers,
		func(now time.Time) error { return clk.Advance(now) },
		func(w int, rec string, st Step) error {
			t0 := time.Now()
			if _, err := pubs[w].Publish(rec, st.Pubs[rec]); err != nil {
				return err
			}
			faultMu.Lock()
			if faultPending {
				// First acked publish after a fault: its duration is the
				// recovery latency through reconnect + resume + replay.
				resumeLat.Observe(time.Since(t0))
				faultPending = false
			}
			faultMu.Unlock()
			return nil
		}, inject)
	if err != nil {
		return nil, fmt.Errorf("netchaos: chaos leg: %w", err)
	}
	wallChaos := time.Since(start).Nanoseconds()

	// Lift whatever fault the last boundary injected (both calls are
	// idempotent), then wait for the subscriber to finish resuming.
	proxy.Resume()
	proxy.Heal()
	if err := <-subErr; err != nil {
		return nil, fmt.Errorf("netchaos: subscriber: %w", err)
	}

	// Deterministic dedup probe: a replayed publish must be dropped by
	// the session dedup path, not re-applied.
	if err := probeDedup(s.Addr()); err != nil {
		return nil, err
	}

	st, err := clk.Stats()
	if err != nil {
		return nil, err
	}

	clientReconnects := subc.Reconnects() + clk.Reconnects()
	for _, p := range pubs {
		clientReconnects += p.Reconnects()
	}

	pstats := proxy.Stats()
	res := &NetChaosResult{
		Faults:           faults,
		LinksOpened:      pstats.Accepted,
		LinksKilled:      pstats.Killed,
		Reconnects:       clientReconnects,
		ServerReconn:     st.Reconnects,
		Resumes:          st.Resumes,
		DedupDrops:       st.DedupDrops,
		IdleKills:        st.IdleKills,
		TuplesPublished:  published,
		TuplesApplied:    st.TuplesIn,
		ExactlyOnce:      st.TuplesIn == int64(published),
		EpochsCommitted:  st.Epochs,
		FingerprintChaos: fmt.Sprintf("%016x", fp.Sum()),
		ResumeLatency:    resumeLat.Snapshot(),
		WallNsChaos:      wallChaos,
	}

	// Acceptance gates beyond the fingerprint (checked by the caller).
	if !res.ExactlyOnce {
		return res, fmt.Errorf("netchaos: %d tuples applied, %d published — a replay was double-applied or a publish lost",
			st.TuplesIn, published)
	}
	if want := int64(cfg.Load.Epochs); st.Epochs != want {
		return res, fmt.Errorf("netchaos: %d epochs committed, want %d", st.Epochs, want)
	}
	if res.Reconnects == 0 || res.ServerReconn == 0 {
		return res, fmt.Errorf("netchaos: no reconnects happened — the faults did not bite (client=%d server=%d)",
			res.Reconnects, res.ServerReconn)
	}
	if res.Resumes == 0 {
		return res, fmt.Errorf("netchaos: subscriber never resumed — every fault missed the push connection")
	}
	if res.DedupDrops == 0 {
		return res, fmt.Errorf("netchaos: no dedup drops — the replay probe did not reach the dedup path")
	}
	return res, nil
}

// probeDedup replays one session publish under its original seq. Both
// calls must be acked — the second dropped by session dedup, which the
// caller checks via the tenant's serve_dedup_drops counter. Empty
// tuple slices keep the probe invisible to the output fingerprint and
// the applied-tuple count.
func probeDedup(addr string) error {
	probe, err := server.Dial(addr)
	if err != nil {
		return err
	}
	defer probe.Close()
	if _, err := probe.HelloSession("netchaos", "pub", "dedup-probe", 0); err != nil {
		return fmt.Errorf("netchaos: dedup probe hello: %w", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := probe.PublishSeq(MoteID(0), 1, nil); err != nil {
			return fmt.Errorf("netchaos: dedup probe publish %d: %w", i+1, err)
		}
	}
	return nil
}

// probeIdleKill parks a tenant-bound connection against a server with a
// short idle timeout and verifies the read deadline reaps it — the
// deterministic check that conn_idle_kills counts what it claims.
func probeIdleKill() (int64, error) {
	s, err := server.Listen(server.Config{Addr: "127.0.0.1:0", IdleTimeout: 150 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	go s.Serve() //nolint:errcheck
	defer shutdown(s)

	c, err := server.Dial(s.Addr())
	if err != nil {
		return 0, err
	}
	defer c.Close()
	spec := LoadgenSpec(LoadgenOptions{Motes: 1, GroupSize: 1, Epochs: 1, Epoch: time.Second, Delivery: 1})
	if err := c.Create("probe", spec); err != nil {
		return 0, err
	}

	// Park: the bound connection sends nothing and must be idle-killed.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if t, ok := s.Engine().Tenant("probe"); ok {
			if kills := t.Stats().IdleKills; kills > 0 {
				return kills, nil
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	return 0, fmt.Errorf("netchaos: parked connection was not idle-killed within 5s")
}

func shutdown(s *server.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
}
