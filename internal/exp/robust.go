package exp

import (
	"time"

	"esp/internal/core"
	"esp/internal/metrics"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// RobustResult compares Merge-stage estimators on the §5.1 fail-dirty
// scenario: the paper's avg±σ rejection (Query 5) vs. a median — the
// robust-statistics member of the anticipated "suite of ESP Operators".
type RobustResult struct {
	Name string
	// Within1C is the fraction of post-failure epochs within 1 °C of the
	// room truth.
	Within1C float64
	// MaxErr is the worst post-failure absolute error.
	MaxErr float64
	// Coverage is the fraction of post-failure epochs with any output.
	Coverage float64
}

// RunRobustMerge runs the outlier scenario once per estimator and scores
// each against the room truth over the post-failure period.
func RunRobustMerge(cfg OutlierConfig) ([]RobustResult, error) {
	estimators := []struct {
		name  string
		merge core.Stage
	}{
		{"avg±1σ rejection (Query 5)", core.MergeOutlierAvg("temp", cfg.Sim.Epoch, cfg.Sigma)},
		{"median", core.MergeMedian("temp", cfg.Sim.Epoch)},
		{"plain average (no rejection)", core.MergeAvg("temp", cfg.Sim.Epoch)},
	}
	var out []RobustResult
	for _, est := range estimators {
		r, err := runRobustOnce(cfg, est.name, est.merge)
		if err != nil {
			return nil, err
		}
		out = append(out, *r)
	}
	return out, nil
}

func runRobustOnce(cfg OutlierConfig, name string, merge core.Stage) (*RobustResult, error) {
	sc, err := sim.NewOutlierScenario(cfg.Sim)
	if err != nil {
		return nil, err
	}
	recs := sc.Receptors()
	p, err := core.NewProcessor(&core.Deployment{
		Epoch:     cfg.Sim.Epoch,
		Receptors: recs,
		Groups:    sc.Groups,
		Pipelines: map[receptor.Type]*core.Pipeline{
			receptor.TypeMote: {
				Type:  receptor.TypeMote,
				Point: core.PointBelow("temp", cfg.PointLimit),
				Merge: merge,
			},
		},
	})
	if err != nil {
		return nil, err
	}
	sch, _ := p.TypeSchema(receptor.TypeMote)
	tempIx := sch.MustIndex("temp")

	var latest float64
	var seen bool
	p.OnType(receptor.TypeMote, func(tu stream.Tuple) {
		latest = tu.Values[tempIx].AsFloat()
		seen = true
	})

	res := &RobustResult{Name: name}
	var rep, tru []float64
	covered, total := 0, 0
	start := time.Unix(0, 0).UTC()
	for now := start.Add(cfg.Sim.Epoch); !now.After(start.Add(cfg.Duration)); now = now.Add(cfg.Sim.Epoch) {
		seen = false
		if err := p.Step(now); err != nil {
			return nil, err
		}
		t := now.Sub(start)
		if t <= cfg.Sim.FailStart {
			continue
		}
		total++
		if !seen {
			continue
		}
		covered++
		truth := sc.Truth(now)
		rep = append(rep, latest)
		tru = append(tru, truth)
		if d := abs(latest - truth); d > res.MaxErr {
			res.MaxErr = d
		}
	}
	if res.Within1C, err = metrics.WithinTolerance(rep, tru, 1); err != nil {
		return nil, err
	}
	if res.Coverage, err = metrics.EpochYield(covered, total); err != nil {
		return nil, err
	}
	return res, nil
}
