// Benchmarks regenerating the paper's evaluation — one testing.B per
// figure/table (see DESIGN.md's experiment index), plus ablations for the
// design decisions called out there. Fidelity metrics (error, yield,
// accuracy) are reported alongside timing via b.ReportMetric; run
//
//	go test -bench=. -benchmem
//
// and compare the custom columns against the paper targets in
// EXPERIMENTS.md. Benchmark iterations use shortened workloads so the
// whole suite completes in minutes; cmd/espbench runs the full-length
// versions.
package esp_test

import (
	"testing"
	"time"

	"esp/internal/core"
	"esp/internal/exp"
	"esp/internal/receptor"
	"esp/internal/sim"
	"esp/internal/stream"
)

// benchShelfConfig is a 120 s shelf run (the full experiment is 700 s).
func benchShelfConfig(mode exp.PipelineMode) exp.ShelfConfig {
	cfg := exp.DefaultShelfConfig()
	cfg.Duration = 120 * time.Second
	cfg.Mode = mode
	return cfg
}

// BenchmarkFig3ShelfPipeline runs the §4 shelf deployment through the
// full Smooth+Arbitrate pipeline (Figure 3(d)).
func BenchmarkFig3ShelfPipeline(b *testing.B) {
	var err float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunShelf(benchShelfConfig(exp.ModeSmoothArbitrate))
		if e != nil {
			b.Fatal(e)
		}
		err = res.AvgRelErr
	}
	b.ReportMetric(err, "avgRelErr")
}

// BenchmarkFig3Raw is the Figure 3(b) baseline: Query 1 on raw data.
func BenchmarkFig3Raw(b *testing.B) {
	var err, alerts float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunShelf(benchShelfConfig(exp.ModeRaw))
		if e != nil {
			b.Fatal(e)
		}
		err, alerts = res.AvgRelErr, res.AlertRate
	}
	b.ReportMetric(err, "avgRelErr")
	b.ReportMetric(alerts, "alerts/s")
}

// BenchmarkFig5Ablation runs all five pipeline configurations of Fig. 5.
func BenchmarkFig5Ablation(b *testing.B) {
	var worst, best float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunShelfAblation(benchShelfConfig(exp.ModeRaw))
		if e != nil {
			b.Fatal(e)
		}
		worst, best = res[0].AvgRelErr, res[len(res)-1].AvgRelErr
	}
	b.ReportMetric(worst, "rawErr")
	b.ReportMetric(best, "smoothArbErr")
}

// BenchmarkFig6GranuleSweep sweeps the temporal granule (three points of
// the Figure 6 curve; espbench runs the full sweep).
func BenchmarkFig6GranuleSweep(b *testing.B) {
	granules := []time.Duration{time.Second, 5 * time.Second, 20 * time.Second}
	var at5s float64
	for i := 0; i < b.N; i++ {
		points, e := exp.RunGranuleSweep(benchShelfConfig(exp.ModeSmoothArbitrate), granules)
		if e != nil {
			b.Fatal(e)
		}
		at5s = points[1].AvgRelErr
	}
	b.ReportMetric(at5s, "errAt5s")
}

// BenchmarkFig7Outlier runs the §5.1 fail-dirty detection over 30 hours.
func BenchmarkFig7Outlier(b *testing.B) {
	cfg := exp.DefaultOutlierConfig()
	cfg.Duration = 30 * time.Hour
	cfg.KeepTrace = false
	var within float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunOutlier(cfg)
		if e != nil {
			b.Fatal(e)
		}
		within = res.ESPWithin1C
	}
	b.ReportMetric(within, "espWithin1C")
}

// BenchmarkYieldRedwood runs the §5.2 epoch-yield ladder over one day.
func BenchmarkYieldRedwood(b *testing.B) {
	cfg := exp.DefaultRedwoodConfig()
	cfg.Duration = 24 * time.Hour
	var raw, smooth, merge float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunRedwoodYield(cfg)
		if e != nil {
			b.Fatal(e)
		}
		raw, smooth, merge = res.RawYield, res.SmoothYield, res.MergeYield
	}
	b.ReportMetric(raw, "rawYield")
	b.ReportMetric(smooth, "smoothYield")
	b.ReportMetric(merge, "mergeYield")
}

// BenchmarkSpatialGranuleSweep sweeps proximity-group size (§5.3.2).
func BenchmarkSpatialGranuleSweep(b *testing.B) {
	cfg := exp.DefaultRedwoodConfig()
	cfg.Duration = 24 * time.Hour
	cfg.Sim.Motes = 16
	var yield8 float64
	for i := 0; i < b.N; i++ {
		points, e := exp.RunSpatialSweep(cfg, []int{2, 8})
		if e != nil {
			b.Fatal(e)
		}
		yield8 = points[1].MergeYield
	}
	b.ReportMetric(yield8, "yieldAtSize8")
}

// BenchmarkFig9DigitalHome runs the §6 person detector (600 s, 8 devices,
// three pipelines plus Virtualize).
func BenchmarkFig9DigitalHome(b *testing.B) {
	cfg := exp.DefaultHomeConfig()
	var acc float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunDigitalHome(cfg)
		if e != nil {
			b.Fatal(e)
		}
		acc = res.Accuracy
	}
	b.ReportMetric(acc, "accuracy")
}

// BenchmarkActuation runs the §5.3.1 receptor-actuation comparison (an
// extension: the paper leaves actuation as future work).
func BenchmarkActuation(b *testing.B) {
	cfg := exp.DefaultActuationConfig()
	cfg.Duration = 12 * time.Hour
	cfg.Sim.Motes = 8
	var actuatedYield float64
	for i := 0; i < b.N; i++ {
		vs, e := exp.RunActuation(cfg)
		if e != nil {
			b.Fatal(e)
		}
		actuatedYield = vs[2].SmoothYield
	}
	b.ReportMetric(actuatedYield, "actuatedYield")
}

// BenchmarkModelOutlier runs the §6.3.1 BBQ-style model-based cleaning
// extension: detecting a fail-dirty sensor from its own voltage channel.
func BenchmarkModelOutlier(b *testing.B) {
	cfg := exp.DefaultModelOutlierConfig()
	var leadHours float64
	for i := 0; i < b.N; i++ {
		res, e := exp.RunModelOutlier(cfg)
		if e != nil {
			b.Fatal(e)
		}
		leadHours = (res.ThresholdFirstDrop - res.ModelFirstDrop).Hours()
	}
	b.ReportMetric(leadHours, "leadHours")
}

// BenchmarkRobustMerge runs the Merge-estimator ablation (avg±σ vs median
// vs plain average) on the fail-dirty scenario.
func BenchmarkRobustMerge(b *testing.B) {
	cfg := exp.DefaultOutlierConfig()
	cfg.Duration = 30 * time.Hour
	var medianWithin float64
	for i := 0; i < b.N; i++ {
		rs, e := exp.RunRobustMerge(cfg)
		if e != nil {
			b.Fatal(e)
		}
		medianWithin = rs[1].Within1C
	}
	b.ReportMetric(medianWithin, "medianWithin1C")
}

// --- design ablations -------------------------------------------------

// windowAggBench drives one WindowAgg over a synthetic RFID stream.
func windowAggBench(b *testing.B, naive bool) {
	schema := stream.MustSchema(
		stream.Field{Name: "tag_id", Kind: stream.KindString},
		stream.Field{Name: "shelf", Kind: stream.KindInt},
	)
	tags := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	start := time.Unix(0, 0).UTC()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := &stream.WindowAgg{
			GroupBy: []stream.NamedExpr{{Name: "tag_id", Expr: stream.NewCol("tag_id")}},
			Aggs: []stream.AggSpec{
				{Name: "n", Func: stream.AggCount},
				{Name: "d", Func: stream.AggCount, Arg: stream.NewCol("shelf"), Distinct: true},
			},
			Range: 5 * time.Second,
			Slide: 200 * time.Millisecond,
			Naive: naive,
		}
		if err := w.Open(schema); err != nil {
			b.Fatal(err)
		}
		for epoch := 0; epoch < 500; epoch++ {
			now := start.Add(time.Duration(epoch+1) * 200 * time.Millisecond)
			for t, tag := range tags {
				tu := stream.NewTuple(now.Add(-time.Millisecond), stream.String(tag), stream.Int(int64(t%2)))
				if _, err := w.Process(tu); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := w.Advance(now); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAblationPanes compares the pane-merging window implementation
// against from-scratch re-aggregation (DESIGN.md: punctuated push model).
func BenchmarkAblationPanes(b *testing.B)      { windowAggBench(b, false) }
func BenchmarkAblationPanesNaive(b *testing.B) { windowAggBench(b, true) }

// runnerBench drives the shelf deployment with either runner.
func runnerBench(b *testing.B, concurrent bool) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultShelfConfig()
		sc, err := sim.NewShelfScenario(cfg)
		if err != nil {
			b.Fatal(err)
		}
		recs := make([]receptor.Receptor, len(sc.Readers))
		for j, r := range sc.Readers {
			recs[j] = r
		}
		p, err := core.NewProcessor(&core.Deployment{
			Epoch:     cfg.PollPeriod,
			Receptors: recs,
			Groups:    sc.Groups,
			Pipelines: map[receptor.Type]*core.Pipeline{
				receptor.TypeRFID: {
					Type:      receptor.TypeRFID,
					Point:     core.PointChecksum("checksum_ok"),
					Smooth:    core.SmoothTagCount(5 * time.Second),
					Arbitrate: core.ArbitrateMaxSum("tag_id", "n"),
				},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Unix(0, 0).UTC()
		end := start.Add(60 * time.Second)
		if concurrent {
			err = p.RunConcurrent(start, end)
		} else {
			err = p.Run(start, end)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRunner compares the synchronous and channel-based
// (Fjord-style) processor runners, which are output-identical.
func BenchmarkAblationRunnerSync(b *testing.B)       { runnerBench(b, false) }
func BenchmarkAblationRunnerConcurrent(b *testing.B) { runnerBench(b, true) }

// BenchmarkSchedulerSeqVsParallel compares the two dataflow schedulers on
// a wide deployment (48 legs, 12 merges — see exp.DefaultSchedConfig,
// shortened here so the suite stays fast). Output is byte-identical
// either way (TestSchedulerEquivalence); this measures only wall time.
// Parallel gains require multiple cores: on GOMAXPROCS=1 the pool
// degrades to sequential execution plus queuing overhead.
func BenchmarkSchedulerSeqVsParallel(b *testing.B) {
	cfg := exp.DefaultSchedConfig()
	cfg.Duration = 2 * time.Hour
	b.Run("seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := exp.RunWideSched(cfg, core.SeqScheduler{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		sched := core.NewParallelScheduler(0)
		defer sched.Close()
		b.ReportMetric(float64(sched.Workers()), "workers")
		for i := 0; i < b.N; i++ {
			if _, _, _, err := exp.RunWideSched(cfg, sched); err != nil {
				b.Fatal(err)
			}
		}
	})
}
